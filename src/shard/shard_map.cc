#include "shard/shard_map.h"

#include <algorithm>
#include <cstdio>

namespace helios::shard {
namespace {

const char* KindToken(ShardMap::Kind kind) {
  return kind == ShardMap::Kind::kHash ? "hash" : "range";
}

uint64_t Fnv1a64(const Key& key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ShardMap ShardMap::Hash(int num_shards) {
  ShardMap map;
  map.kind_ = Kind::kHash;
  map.num_shards_ = num_shards;
  return map;
}

ShardMap ShardMap::Range(std::vector<Key> boundaries) {
  ShardMap map;
  map.kind_ = Kind::kRange;
  map.num_shards_ = static_cast<int>(boundaries.size()) + 1;
  map.boundaries_ = std::move(boundaries);
  return map;
}

ShardMap ShardMap::RangeOverWorkloadKeys(int num_shards, uint64_t num_keys) {
  // Every shard must own at least one workload key: more shards than keys
  // would emit duplicate boundary strings — an invalid (overlapping) map.
  if (num_shards < 1) num_shards = 1;
  if (static_cast<uint64_t>(num_shards) > num_keys) {
    num_shards = num_keys < 1 ? 1 : static_cast<int>(num_keys);
  }
  std::vector<Key> boundaries;
  for (int s = 1; s < num_shards; ++s) {
    const uint64_t split =
        num_keys * static_cast<uint64_t>(s) / static_cast<uint64_t>(num_shards);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%08llu",
                  static_cast<unsigned long long>(split));
    boundaries.emplace_back(buf);
  }
  return Range(std::move(boundaries));
}

int ShardMap::ShardOf(const Key& key) const {
  if (num_shards_ <= 1) return 0;
  if (kind_ == Kind::kHash) {
    return static_cast<int>(Fnv1a64(key) %
                            static_cast<uint64_t>(num_shards_));
  }
  // First boundary > key starts the next partition; key belongs before it.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key);
  return static_cast<int>(it - boundaries_.begin());
}

Status ShardMap::Validate() const {
  if (num_shards_ < 1) {
    return Status::InvalidArgument("shard map needs >= 1 shard (got " +
                                   std::to_string(num_shards_) + ")");
  }
  if (kind_ == Kind::kHash) {
    if (!boundaries_.empty()) {
      return Status::InvalidArgument(
          "hash shard map must not carry range boundaries");
    }
    return Status::Ok();
  }
  if (static_cast<int>(boundaries_.size()) != num_shards_ - 1) {
    return Status::InvalidArgument(
        "range shard map with " + std::to_string(num_shards_) +
        " shards needs exactly " + std::to_string(num_shards_ - 1) +
        " boundaries (got " + std::to_string(boundaries_.size()) + ")");
  }
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    if (boundaries_[i].empty()) {
      return Status::InvalidArgument(
          "range boundary " + std::to_string(i) +
          " is empty: shard 0 would own an empty partition");
    }
    if (i > 0 && boundaries_[i] <= boundaries_[i - 1]) {
      return Status::InvalidArgument(
          "range boundaries must be strictly ascending: boundary " +
          std::to_string(i) + " ('" + boundaries_[i] +
          "') does not sort after '" + boundaries_[i - 1] +
          "' (overlapping partitions)");
    }
  }
  return Status::Ok();
}

std::string ShardMap::ToJson() const {
  std::string out;
  json::ObjectWriter obj(&out);
  if (kind_ == Kind::kRange) {
    std::string arr = "[";
    for (size_t i = 0; i < boundaries_.size(); ++i) {
      if (i > 0) arr += ",";
      json::AppendEscaped(&arr, boundaries_[i]);
    }
    arr += "]";
    obj.Raw("boundaries", arr);
  }
  obj.Field("kind", std::string(KindToken(kind_)));
  obj.Field("shards", static_cast<int64_t>(num_shards_));
  obj.Close();
  return out;
}

Result<ShardMap> ShardMap::FromJsonValue(const json::Value& value) {
  if (value.kind != json::Value::Kind::kObject) {
    return Status::InvalidArgument("shard map JSON must be an object");
  }
  ShardMap map;
  bool saw_kind = false;
  bool saw_boundaries = false;
  for (const auto& [key, v] : value.members) {
    Status st;
    if (key == "boundaries") {
      if (v.kind != json::Value::Kind::kArray) {
        st = json::WrongType(key, "an array of strings");
      } else {
        saw_boundaries = true;
        map.boundaries_.clear();
        for (const json::Value& item : v.items) {
          Key boundary;
          st = json::ReadString(key, item, &boundary);
          if (!st.ok()) break;
          map.boundaries_.push_back(std::move(boundary));
        }
      }
    } else if (key == "kind") {
      std::string token;
      st = json::ReadString(key, v, &token);
      if (st.ok()) {
        saw_kind = true;
        if (token == "hash") {
          map.kind_ = Kind::kHash;
        } else if (token == "range") {
          map.kind_ = Kind::kRange;
        } else {
          st = Status::InvalidArgument("unknown shard map kind '" + token +
                                       "' (expected hash|range)");
        }
      }
    } else if (key == "shards") {
      st = json::ReadInt(key, v, &map.num_shards_);
    } else {
      st = Status::InvalidArgument("unknown shard map key '" + key + "'");
    }
    if (!st.ok()) return st;
  }
  if (!saw_kind) {
    return Status::InvalidArgument("shard map JSON is missing 'kind'");
  }
  if (saw_boundaries && map.kind_ == Kind::kHash) {
    return Status::InvalidArgument(
        "hash shard map must not carry range boundaries");
  }
  Status st = map.Validate();
  if (!st.ok()) return st;
  return map;
}

Result<ShardMap> ShardMap::FromJson(const std::string& json) {
  auto parsed = json::Parse(json);
  if (!parsed.ok()) return parsed.status();
  return FromJsonValue(parsed.value());
}

}  // namespace helios::shard
