// Partitioning of the keyspace across independent Helios deployments.
//
// A ShardMap is a pure routing function: it never changes during a run
// (no splits/merges/rebalancing), so every datacenter's coordinator and
// every client agree on which shard owns a key by construction. Two
// partition kinds:
//
//   hash   FNV-1a(key) mod S — uniform spread, destroys key locality.
//   range  S-1 sorted split points; shard i owns [boundary[i-1],
//          boundary[i]) with open ends — preserves locality, so a
//          workload over disjoint key ranges touches one shard per
//          transaction (the bench's disjoint-partition scaling leg).
//
// The JSON form round-trips strictly (unknown keys rejected, keys written
// in alphabetical order), matching the ExperimentSpec / ClusterSpec
// conventions.

#ifndef HELIOS_SHARD_SHARD_MAP_H_
#define HELIOS_SHARD_SHARD_MAP_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/types.h"

namespace helios::shard {

class ShardMap {
 public:
  enum class Kind { kHash, kRange };

  /// Single-shard hash map: every key routes to shard 0.
  ShardMap() = default;

  static ShardMap Hash(int num_shards);
  /// Range partition from S-1 split points (must be sorted, distinct and
  /// non-empty — Validate() reports which constraint failed).
  static ShardMap Range(std::vector<Key> boundaries);
  /// Range partition splitting the harness workload keyspace
  /// ("user%08llu", see workload::TYcsbGenerator) into `num_shards`
  /// near-equal contiguous runs of `num_keys` keys. `num_shards` is
  /// clamped to [1, num_keys] so every shard owns at least one key —
  /// the result always passes Validate().
  static ShardMap RangeOverWorkloadKeys(int num_shards, uint64_t num_keys);

  Kind kind() const { return kind_; }
  int num_shards() const { return num_shards_; }
  const std::vector<Key>& boundaries() const { return boundaries_; }

  /// Which shard owns `key`. The map must be Validate()-clean.
  int ShardOf(const Key& key) const;

  /// Structural sanity: num_shards >= 1; a range map has exactly
  /// num_shards - 1 boundaries, strictly ascending and non-empty (an
  /// empty first boundary would leave shard 0 an empty partition, and
  /// equal neighbours would overlap).
  Status Validate() const;

  std::string ToJson() const;
  static Result<ShardMap> FromJson(const std::string& json);
  static Result<ShardMap> FromJsonValue(const json::Value& value);

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.kind_ == b.kind_ && a.num_shards_ == b.num_shards_ &&
           a.boundaries_ == b.boundaries_;
  }
  friend bool operator!=(const ShardMap& a, const ShardMap& b) {
    return !(a == b);
  }

 private:
  Kind kind_ = Kind::kHash;
  int num_shards_ = 1;
  std::vector<Key> boundaries_;  ///< Range kind only (size num_shards - 1).
};

}  // namespace helios::shard

#endif  // HELIOS_SHARD_SHARD_MAP_H_
