// Horizontally sharded Helios deployment with cross-shard parallel commit.
//
// A ShardedCluster runs one fully independent Helios deployment — its own
// replicated log, timetable, pools and WAL — per shard, all sharing the
// simulated scheduler and WAN. A ShardMap routes every key to exactly one
// shard, so:
//
//   * A transaction touching one shard takes the completely unchanged
//     Helios fast path: the call is delegated to that shard's
//     HeliosCluster and never sees the coordinator.
//
//   * A cross-shard transaction runs a parallel commit in the shape of
//     CockroachDB's: the per-datacenter coordinator durably writes a
//     STAGED record in the TxnStatusStore, stages one slice per
//     participant shard *in parallel* (each runs the normal Algorithm 1
//     admission + commit wait, then holds its prepared intent), raises
//     every slice's commit-wait base to the transaction-wide maximum
//     request timestamp, and on the last prepared ack durably flips the
//     status to COMMITTED before replying to the client and finalizing
//     the slices. One WAN commit wait total — the slices wait
//     concurrently — instead of the sequential prepare-then-commit of
//     2PC.
//
// Safety of the two pieces stitched together:
//
//   * Serializability composes because every read-write or write-write
//     conflict involves a written key, the shard owning that key sees
//     both transactions' slices in one Helios log, and the shared wait
//     base makes the per-slice commit waits as strong as a single
//     transaction staged at the latest slice's timestamp (see
//     HandleRaiseStagedWait). Per-shard serializability plus atomic
//     cross-shard decisions then yields one global serialization order.
//
//   * Crash atomicity: a recovering shard node finds its own still-
//     preparing intents in the WAL and asks the coordinator's durable
//     status table (set_staged_resolver). COMMITTED means the client may
//     have seen the commit — the intent is re-finalized as committed;
//     STAGED is durably flipped to ABORTED first (so every sibling slice
//     resolves the same way, whenever it asks) and aborted; ABORTED
//     aborts. The status write always precedes the client reply, which
//     is what makes presumed-abort safe here.
//
// Read-only limitation: ClientReadOnly serves each shard's keys at that
// shard's local snapshot; the per-shard snapshots are taken at slightly
// different instants, so a cross-shard read-only transaction can observe
// a torn state across shards (docs/SHARDING.md). Single-shard read-only
// transactions keep Appendix B's guarantee.

#ifndef HELIOS_SHARD_SHARDED_CLUSTER_H_
#define HELIOS_SHARD_SHARDED_CLUSTER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/protocol.h"
#include "core/helios_cluster.h"
#include "core/helios_config.h"
#include "core/helios_node.h"
#include "core/history.h"
#include "shard/shard_map.h"
#include "shard/txn_status_store.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::shard {

/// Client-facing counters of the cross-shard coordinator layer.
struct CrossShardCounters {
  uint64_t single_shard = 0;     ///< Commits delegated on the fast path.
  uint64_t staged = 0;           ///< Cross-shard transactions started.
  uint64_t committed = 0;        ///< ... decided committed.
  uint64_t aborted = 0;          ///< ... decided aborted.
  uint64_t resolved_aborts = 0;  ///< STAGED entries flipped to ABORTED by
                                 ///< the crash-recovery resolver.
};

class ShardedCluster : public ProtocolCluster {
 public:
  /// `scheduler` and `network` must outlive the cluster; `network` must
  /// have `config.num_datacenters` nodes (all shards share the WAN).
  /// `map` must be Validate()-clean with >= 1 shard.
  ShardedCluster(sim::Scheduler* scheduler, sim::Network* network,
                 core::HeliosConfig config, ShardMap map,
                 core::LogProtocolKind kind = core::LogProtocolKind::kHelios,
                 std::string name = "Helios");

  void Start() override;
  void LoadInitialAll(const Key& key, const Value& value) override;
  void ClientRead(DcId client_dc, const Key& key, ReadCallback done) override;
  void ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                    std::vector<WriteEntry> writes,
                    CommitCallback done) override;
  void ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                      ReadOnlyCallback done) override;
  std::string name() const override { return name_; }
  int num_datacenters() const override { return config_.num_datacenters; }

  void SetObservability(obs::TraceRecorder* trace,
                        obs::MetricsRegistry* metrics) override;
  void ExportMetrics(obs::MetricsRegistry* registry) const override;
  void SetReliableMesh(sim::ReliableMesh* mesh) override;
  void SetDatacenterDown(DcId dc, bool down) override;
  void InjectStall(DcId dc, Duration pause) override;
  void InjectFsyncStall(DcId dc, Duration per_record,
                        Duration window) override;

  // Checker observation points. The flat per-DC journal surface is
  // intentionally absent (null): a shard's journal holds only its slice
  // of the traffic, and handing any single one to the legacy oracles
  // would read as lost transactions. Shard-aware captures use
  // shard_wal_journal() instead.
  const wal::MemoryWal* wal_journal(DcId /*dc*/) const override {
    return nullptr;
  }
  const wal::MemoryWal* shard_wal_journal(DcId dc, int s) const {
    return shards_[static_cast<size_t>(s)]->wal_journal(dc);
  }
  void SnapshotStore(
      DcId dc, const std::function<void(const Key&, const VersionedValue&)>&
                   fn) const override {
    for (const auto& sc : shards_) sc->SnapshotStore(dc, fn);
  }
  bool datacenter_down(DcId dc) const override {
    return shards_[0]->datacenter_down(dc);
  }
  /// Combined totals: `recoveries` counts datacenter recovery events (the
  /// max across shards — every shard's node restarts on the same event),
  /// volume and duration fields sum across shards.
  RecoveryStats recovery_snapshot() const override;

  /// See HeliosCluster::set_envelope_sizer; applied to every shard.
  void set_envelope_sizer(core::HeliosCluster::EnvelopeSizer sizer);

  const ShardMap& shard_map() const { return map_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  core::HeliosCluster& shard(int s) { return *shards_[static_cast<size_t>(s)]; }
  const core::HeliosCluster& shard(int s) const {
    return *shards_[static_cast<size_t>(s)];
  }
  const TxnStatusStore& txn_status(DcId dc) const {
    return status_[static_cast<size_t>(dc)];
  }
  core::HistoryRecorder& history() { return history_; }
  const CrossShardCounters& cross_shard_counters() const { return xstats_; }
  const core::HeliosConfig& config() const { return config_; }

  /// Sum of the node counters across all shards and datacenters.
  core::NodeCounters AggregateCounters() const;

 private:
  /// Coordinator state for one in-flight cross-shard transaction. Lives
  /// in volatile memory: a crash of the coordinating datacenter drops it,
  /// leaving the durable STAGED status for recovery-time resolution.
  struct CrossShardTxn {
    DcId dc = kInvalidDc;
    std::vector<int> participants;
    std::map<int, Timestamp> admitted;  ///< shard -> slice request ts.
    std::set<int> prepared;
    std::set<int> failed;
    bool floor_sent = false;
    Timestamp max_proposed = kMinTimestamp;
    std::string abort_reason;
    TxnBodyPtr body;  ///< Full (unsplit) body, recorded once on commit.
    CommitCallback done;
  };
  using SliceMap =
      std::map<int, std::pair<std::vector<ReadEntry>, std::vector<WriteEntry>>>;

  void StartCrossShard(DcId dc, SliceMap slices, TxnBodyPtr body,
                       CommitCallback done);
  void OnSliceAdmitted(int s, const core::StagedAdmitOutcome& out);
  void OnSlicePrepared(int s, const core::StagedCommitOutcome& out);
  /// Runs the coordinator state machine for `id` after any ack.
  void Advance(const TxnId& id);
  core::StagedResolution ResolveStaged(DcId dc, const TxnId& id);
  core::HeliosNode& node(int s, DcId dc) {
    return shards_[static_cast<size_t>(s)]->node(dc);
  }

  sim::Scheduler* scheduler_;
  core::HeliosConfig config_;
  ShardMap map_;
  std::string name_;
  /// One independent Helios deployment per shard. Shard s mints local
  /// TxnIds in residue class s+1 (mod S+1); the coordinator uses residue
  /// 0, so no two logs ever carry the same id.
  std::vector<std::unique_ptr<core::HeliosCluster>> shards_;
  /// Shared serialization history (single-shard commits are recorded by
  /// the shard nodes, cross-shard commits once by the coordinator).
  core::HistoryRecorder history_;
  /// Per-datacenter durable transaction-status table.
  std::vector<TxnStatusStore> status_;
  /// Per-datacenter monotone cross-shard sequence counter (never reset —
  /// survives crashes so recovered coordinators cannot reuse an id).
  std::vector<uint64_t> next_xseq_;
  std::map<TxnId, CrossShardTxn> inflight_;
  CrossShardCounters xstats_;
  bool started_ = false;
};

}  // namespace helios::shard

#endif  // HELIOS_SHARD_SHARDED_CLUSTER_H_
