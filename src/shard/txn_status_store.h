// Durable per-datacenter transaction-status table for cross-shard commits.
//
// The parallel-commit coordinator (ShardedCluster) writes a STAGED entry
// before fanning a transaction's slices out to the participant shards and
// upgrades it to COMMITTED/ABORTED at decision time — always *before* the
// client hears the outcome. The table models the durable disk of the
// coordinator's datacenter: a node crash destroys the coordinator's
// volatile state but never this table, so a recovering shard node can ask
// "what actually happened to this staged transaction I still hold an
// intent for?" (HeliosNode::set_staged_resolver) and get the only answer
// that is safe against what the client may have observed.

#ifndef HELIOS_SHARD_TXN_STATUS_STORE_H_
#define HELIOS_SHARD_TXN_STATUS_STORE_H_

#include <map>
#include <vector>

#include "common/types.h"

namespace helios::shard {

enum class TxnStatus { kStaged, kCommitted, kAborted };

inline const char* TxnStatusName(TxnStatus s) {
  switch (s) {
    case TxnStatus::kStaged:
      return "STAGED";
    case TxnStatus::kCommitted:
      return "COMMITTED";
    case TxnStatus::kAborted:
      return "ABORTED";
  }
  return "?";
}

struct TxnStatusRecord {
  TxnStatus status = TxnStatus::kStaged;
  Timestamp commit_ts = kMinTimestamp;  ///< Valid iff kCommitted.
  std::vector<int> participants;        ///< Shards holding a slice.
};

class TxnStatusStore {
 public:
  void Stage(const TxnId& id, std::vector<int> participants) {
    TxnStatusRecord rec;
    rec.participants = std::move(participants);
    entries_[id] = std::move(rec);
  }

  void Commit(const TxnId& id, Timestamp commit_ts) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    it->second.status = TxnStatus::kCommitted;
    it->second.commit_ts = commit_ts;
  }

  void Abort(const TxnId& id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    it->second.status = TxnStatus::kAborted;
  }

  const TxnStatusRecord* Lookup(const TxnId& id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
  }

  const std::map<TxnId, TxnStatusRecord>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

 private:
  std::map<TxnId, TxnStatusRecord> entries_;
};

}  // namespace helios::shard

#endif  // HELIOS_SHARD_TXN_STATUS_STORE_H_
