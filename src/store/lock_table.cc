#include "store/lock_table.h"

#include <algorithm>
#include <cassert>

namespace helios {

namespace {

// Wound-wait priority: (start timestamp, id) — lexicographically smaller is
// older and wins. The id tie-break makes the order total so two requests can
// never each consider the other older.
bool Older(Timestamp a_ts, TxnId a, Timestamp b_ts, TxnId b) {
  if (a_ts != b_ts) return a_ts < b_ts;
  return a < b;
}

}  // namespace

bool LockTable::Compatible(const LockState& state, TxnId txn, LockMode mode) {
  for (const Holder& h : state.holders) {
    if (h.txn == txn) continue;  // Own hold never conflicts (upgrade case).
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

void LockTable::Grant(LockState& state, TxnId txn, LockMode mode,
                      Timestamp start_ts) {
  for (Holder& h : state.holders) {
    if (h.txn == txn) {
      if (mode == LockMode::kExclusive) h.mode = LockMode::kExclusive;
      return;
    }
  }
  state.holders.push_back(Holder{txn, mode, start_ts});
}

bool LockTable::TryAcquire(const Key& key, LockMode mode, TxnId txn,
                           Timestamp start_ts) {
  if (Holds(key, txn, mode)) return true;
  LockState& state = locks_[key];
  if (!Compatible(state, txn, mode)) {
    if (state.holders.empty() && state.waiters.empty()) locks_.erase(key);
    return false;
  }
  Grant(state, txn, mode, start_ts);
  held_by_txn_[txn].insert(key);
  return true;
}

bool LockTable::Holds(const Key& key, TxnId txn, LockMode mode) const {
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) {
      return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
    }
  }
  return false;
}

void LockTable::Acquire(const Key& key, LockMode mode, TxnId txn,
                        Timestamp start_ts, GrantCallback grant) {
  if (Holds(key, txn, mode)) {
    grant(Status::Ok());
    return;
  }
  LockState& state = locks_[key];
  if (Compatible(state, txn, mode)) {
    Grant(state, txn, mode, start_ts);
    held_by_txn_[txn].insert(key);
    grant(Status::Ok());
    return;
  }

  if (policy_ == LockPolicy::kNoWait) {
    ++immediate_refusals_;
    if (state.holders.empty() && state.waiters.empty()) locks_.erase(key);
    grant(Status::Aborted("lock conflict (no-wait) on " + key));
    return;
  }

  // Wound-wait: if the requester is older than every conflicting holder,
  // wound them all and take the lock; otherwise wait.
  bool older_than_all = true;
  for (const Holder& h : state.holders) {
    if (h.txn == txn) continue;
    const bool conflicts =
        mode == LockMode::kExclusive || h.mode == LockMode::kExclusive;
    if (conflicts && !Older(start_ts, txn, h.start_ts, h.txn)) {
      older_than_all = false;
      break;
    }
  }
  if (older_than_all) {
    WoundHolders(key, txn, mode, start_ts);
    // Wounding releases locks, which pumps waiter queues — a queued waiter
    // may have been granted this very key in the meantime. Re-run the full
    // decision; this terminates because every wound permanently removes a
    // transaction.
    Acquire(key, mode, txn, start_ts, std::move(grant));
    return;
  }
  state.waiters.push_back(Waiter{txn, mode, start_ts, std::move(grant)});
}

void LockTable::WoundHolders(const Key& key, TxnId requester, LockMode mode,
                             Timestamp start_ts) {
  (void)start_ts;  // Used by the assertion below in debug builds.
  std::vector<TxnId> victims;
  {
    auto it = locks_.find(key);
    if (it == locks_.end()) return;
    for (const Holder& h : it->second.holders) {
      if (h.txn == requester) continue;
      const bool conflicts =
          mode == LockMode::kExclusive || h.mode == LockMode::kExclusive;
      if (conflicts) {
        assert(Older(start_ts, requester, h.start_ts, h.txn));
        victims.push_back(h.txn);
      }
    }
  }
  for (const TxnId& victim : victims) {
    ++wounds_;
    ReleaseAll(victim);
    if (wound_handler_) wound_handler_(victim);
  }
}

void LockTable::PumpWaiters(const Key& key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  while (!state.waiters.empty()) {
    Waiter& w = state.waiters.front();
    if (!Compatible(state, w.txn, w.mode)) break;
    Grant(state, w.txn, w.mode, w.start_ts);
    held_by_txn_[w.txn].insert(key);
    GrantCallback cb = std::move(w.grant);
    state.waiters.pop_front();
    cb(Status::Ok());
    // The callback may have mutated the table; re-find the state.
    it = locks_.find(key);
    if (it == locks_.end()) return;
  }
  if (state.holders.empty() && state.waiters.empty()) locks_.erase(key);
}

void LockTable::ReleaseAll(TxnId txn) {
  // Cancel queued waiters of this transaction first.
  std::vector<GrantCallback> cancelled;
  for (auto& [key, state] : locks_) {
    for (auto wit = state.waiters.begin(); wit != state.waiters.end();) {
      if (wit->txn == txn) {
        cancelled.push_back(std::move(wit->grant));
        wit = state.waiters.erase(wit);
      } else {
        ++wit;
      }
    }
  }

  auto held = held_by_txn_.find(txn);
  std::vector<Key> keys;
  if (held != held_by_txn_.end()) {
    keys.assign(held->second.begin(), held->second.end());
    held_by_txn_.erase(held);
  }
  for (const Key& key : keys) {
    auto it = locks_.find(key);
    if (it == locks_.end()) continue;
    auto& holders = it->second.holders;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [&](const Holder& h) { return h.txn == txn; }),
                  holders.end());
    PumpWaiters(key);
    it = locks_.find(key);
    if (it != locks_.end() && it->second.holders.empty() &&
        it->second.waiters.empty()) {
      locks_.erase(it);
    }
  }

  for (GrantCallback& cb : cancelled) {
    cb(Status::Aborted("lock request cancelled"));
  }
}

}  // namespace helios
