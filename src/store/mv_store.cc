#include "store/mv_store.h"

#include <algorithm>

namespace helios {

Result<VersionedValue> MvStore::Read(const Key& key) const {
  auto it = data_.find(key);
  if (it == data_.end() || it->second.empty()) {
    return Status::NotFound("key has no versions: " + key);
  }
  const auto& [vkey, value] = *it->second.rbegin();
  return VersionedValue{value, vkey.first, vkey.second};
}

Result<VersionedValue> MvStore::ReadAt(const Key& key,
                                       Timestamp snapshot_ts) const {
  auto it = data_.find(key);
  if (it == data_.end() || it->second.empty()) {
    return Status::NotFound("key has no versions: " + key);
  }
  const Chain& chain = it->second;
  // First version with ts > snapshot_ts; the predecessor is the answer.
  auto upper = chain.upper_bound({snapshot_ts, TxnId{INT32_MAX, UINT64_MAX}});
  if (upper == chain.begin()) {
    return Status::NotFound("no version at or before snapshot for: " + key);
  }
  --upper;
  return VersionedValue{upper->second, upper->first.first, upper->first.second};
}

Timestamp MvStore::LatestVersionTs(const Key& key) const {
  auto it = data_.find(key);
  if (it == data_.end() || it->second.empty()) return kMinTimestamp;
  return it->second.rbegin()->first.first;
}

Timestamp MvStore::MaxVersionTsOf(const TxnBody& txn) const {
  Timestamp max_ts = kMinTimestamp;
  for (const ReadEntry& r : txn.read_set) {
    max_ts = std::max(max_ts, LatestVersionTs(r.key));
  }
  for (const WriteEntry& w : txn.write_set) {
    max_ts = std::max(max_ts, LatestVersionTs(w.key));
  }
  return max_ts;
}

void MvStore::ApplyWrite(const Key& key, const Value& value,
                         Timestamp commit_ts, TxnId writer) {
  Chain& chain = data_[key];
  auto [it, inserted] = chain.emplace(std::make_pair(commit_ts, writer), value);
  (void)it;
  if (inserted) {
    ++version_count_;
    if (chain.size() == 2) multi_version_chains_.insert(&chain);
  }
  ++writes_applied_;
}

void MvStore::ApplyTxn(const TxnBody& txn, Timestamp commit_ts) {
  for (const WriteEntry& w : txn.write_set) {
    ApplyWrite(w.key, w.value, commit_ts, txn.id);
  }
}

void MvStore::ForEachLatest(
    const std::function<void(const Key&, const VersionedValue&)>& fn) const {
  for (const auto& [key, chain] : data_) {
    if (chain.empty()) continue;
    const auto& [vkey, value] = *chain.rbegin();
    fn(key, VersionedValue{value, vkey.first, vkey.second});
  }
}

size_t MvStore::TruncateVersionsBefore(Timestamp horizon) {
  // Only chains that ever grew past one version can have anything to drop,
  // so GC walks the multi-version registry instead of every key in the
  // store (with preloaded key pools, single-version keys are the vast
  // majority and a full scan dominated simulator profiles).
  size_t dropped = 0;
  for (auto it = multi_version_chains_.begin();
       it != multi_version_chains_.end();) {
    Chain& chain = **it;
    // Keep the newest version below the horizon (it is still the visible
    // version for snapshots at the horizon) and everything above.
    auto cut = chain.lower_bound({horizon, TxnId{kInvalidDc, 0}});
    if (cut != chain.begin()) {
      --cut;  // newest version strictly below horizon: keep it.
      dropped += static_cast<size_t>(std::distance(chain.begin(), cut));
      chain.erase(chain.begin(), cut);
    }
    if (chain.size() <= 1) {
      it = multi_version_chains_.erase(it);
    } else {
      ++it;
    }
  }
  version_count_ -= dropped;
  return dropped;
}

}  // namespace helios
