// Two-phase-locking lock manager used by the Replicated Commit and
// 2PC/Paxos baselines (Section 5.2).
//
// Supports shared/exclusive locks with upgrade, and two conflict policies:
//
//  - kNoWait:    a conflicting request fails immediately (the requester
//                aborts). Deadlock-free by construction. Replicated Commit
//                uses this: the paper attributes its ~20% abort rate at high
//                client counts to distributed lock conflicts.
//  - kWoundWait: a conflicting *older* requester wounds (aborts) younger
//                holders and takes the lock; a younger requester waits in a
//                FIFO queue. Deadlock-free because waits only ever point
//                from younger to older. 2PC/Paxos uses this, modeling the
//                paper's "transactions detected to be involved in a deadlock
//                are immediately aborted".
//
// Priorities are transaction start timestamps: smaller = older = wins.

#ifndef HELIOS_STORE_LOCK_TABLE_H_
#define HELIOS_STORE_LOCK_TABLE_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace helios {

enum class LockMode { kShared, kExclusive };

enum class LockPolicy { kNoWait, kWoundWait };

/// Lock manager for one datacenter.
class LockTable {
 public:
  /// `grant` runs exactly once per Acquire: immediately (grant or refusal
  /// under kNoWait / wound) or later when a queued request is granted.
  using GrantCallback = std::function<void(Status)>;

  /// `wound_handler(txn)` is invoked when wound-wait kills a holder; the
  /// owner must abort that transaction (it should eventually call
  /// ReleaseAll(txn), which the table also does implicitly on wound).
  using WoundHandler = std::function<void(TxnId)>;

  explicit LockTable(LockPolicy policy) : policy_(policy) {}

  void set_wound_handler(WoundHandler handler) {
    wound_handler_ = std::move(handler);
  }

  /// Requests `mode` on `key` for `txn` with priority `start_ts`.
  /// Re-acquiring an already-held lock (same or weaker mode) succeeds
  /// immediately; holding shared and requesting exclusive attempts an
  /// upgrade.
  void Acquire(const Key& key, LockMode mode, TxnId txn, Timestamp start_ts,
               GrantCallback grant);

  /// Non-blocking acquisition: grants immediately if compatible, returns
  /// false otherwise. Never waits, never wounds, regardless of policy.
  bool TryAcquire(const Key& key, LockMode mode, TxnId txn,
                  Timestamp start_ts);

  /// True if `txn` currently holds `key` in at least `mode`.
  bool Holds(const Key& key, TxnId txn, LockMode mode) const;

  /// Releases every lock `txn` holds and cancels its queued requests
  /// (queued requests complete with kAborted). Grants unblocked waiters.
  void ReleaseAll(TxnId txn);

  size_t locked_keys() const { return locks_.size(); }
  uint64_t wounds() const { return wounds_; }
  uint64_t immediate_refusals() const { return immediate_refusals_; }

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
    Timestamp start_ts;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    Timestamp start_ts;
    GrantCallback grant;
  };
  struct LockState {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  /// True if `mode` for `txn` is compatible with current holders.
  static bool Compatible(const LockState& state, TxnId txn, LockMode mode);
  /// Installs the lock (handles upgrade of an existing shared hold).
  static void Grant(LockState& state, TxnId txn, LockMode mode,
                    Timestamp start_ts);
  void PumpWaiters(const Key& key);
  void WoundHolders(const Key& key, TxnId requester, LockMode mode,
                    Timestamp start_ts);

  LockPolicy policy_;
  WoundHandler wound_handler_;
  std::unordered_map<Key, LockState> locks_;
  std::unordered_map<TxnId, std::unordered_set<Key>, TxnIdHash> held_by_txn_;
  uint64_t wounds_ = 0;
  uint64_t immediate_refusals_ = 0;
};

}  // namespace helios

#endif  // HELIOS_STORE_LOCK_TABLE_H_
