// Multi-version key-value store: the repository's stand-in for the HBase
// layer under each Helios instance.
//
// Every committed write installs a version stamped with the transaction's
// commit timestamp. Versions of a key are ordered by (timestamp, writer) —
// a total order that every replica agrees on regardless of the order in
// which finished records arrive, so replicas converge deterministically.
//
// Correctness note (see core/helios_node.cc for the companion logic):
// commit timestamps are "dependency-bumped" above the version timestamps of
// everything the transaction read or overwrote, which guarantees that the
// (timestamp, writer) order of versions of a key matches the serialization
// order even when datacenter clocks are badly skewed. Clock synchronization
// therefore affects performance only, as the paper requires.

#ifndef HELIOS_STORE_MV_STORE_H_
#define HELIOS_STORE_MV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace helios {

/// One installed version of a key.
struct VersionedValue {
  Value value;
  Timestamp ts = kMinTimestamp;  ///< Commit timestamp of the writer.
  TxnId writer;                  ///< Transaction that installed the version.
};

/// In-memory multi-version store.
class MvStore {
 public:
  MvStore() = default;
  MvStore(const MvStore&) = delete;
  MvStore& operator=(const MvStore&) = delete;

  /// Latest version of `key`; NotFound if the key was never written.
  Result<VersionedValue> Read(const Key& key) const;

  /// Latest version with ts <= `snapshot_ts` (Appendix B read-only
  /// transactions); NotFound if no such version exists.
  Result<VersionedValue> ReadAt(const Key& key, Timestamp snapshot_ts) const;

  /// Version timestamp of the latest version, or kMinTimestamp if absent.
  /// This is the value Algorithm 1 compares against the read set to detect
  /// overwritten reads.
  Timestamp LatestVersionTs(const Key& key) const;

  /// Largest latest-version timestamp across the keys `txn` reads or
  /// writes; used to dependency-bump commit timestamps.
  Timestamp MaxVersionTsOf(const TxnBody& txn) const;

  /// Installs one write.
  void ApplyWrite(const Key& key, const Value& value, Timestamp commit_ts,
                  TxnId writer);

  /// Installs the whole write set of a committed transaction.
  void ApplyTxn(const TxnBody& txn, Timestamp commit_ts);

  /// Drops all but the newest version with ts < `horizon` for each key
  /// (older versions can no longer be read by any live snapshot).
  /// Returns the number of versions discarded.
  size_t TruncateVersionsBefore(Timestamp horizon);

  /// Visits the latest version of every key, in unspecified key order.
  /// Checkers (src/check) snapshot replica state through this to compare
  /// live stores against a WAL replay.
  void ForEachLatest(
      const std::function<void(const Key&, const VersionedValue&)>& fn) const;

  size_t key_count() const { return data_.size(); }
  uint64_t version_count() const { return version_count_; }
  uint64_t writes_applied() const { return writes_applied_; }

  /// Drops every version and resets the counters — the amnesia half of a
  /// crash restart (recovery then replays the WAL journal back in).
  void Clear() {
    multi_version_chains_.clear();
    data_.clear();
    version_count_ = 0;
    writes_applied_ = 0;
  }

 private:
  // Version chain per key, ordered ascending by (ts, writer).
  struct VersionKeyLess {
    bool operator()(const std::pair<Timestamp, TxnId>& a,
                    const std::pair<Timestamp, TxnId>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    }
  };
  using Chain = std::map<std::pair<Timestamp, TxnId>, Value, VersionKeyLess>;

  std::unordered_map<Key, Chain> data_;
  /// Chains that currently hold more than one version — the only ones
  /// TruncateVersionsBefore can shrink, so GC visits just these instead of
  /// scanning the full key space. Pointers stay valid across data_
  /// rehashes (node-based container; keys are never erased), and iteration
  /// order does not affect results (per-chain truncation is independent).
  std::unordered_set<Chain*> multi_version_chains_;
  uint64_t version_count_ = 0;
  uint64_t writes_applied_ = 0;
};

}  // namespace helios

#endif  // HELIOS_STORE_MV_STORE_H_
