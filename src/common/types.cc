#include "common/types.h"

#include <cstdio>

namespace helios {

std::string TxnId::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%d:%llu", origin,
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace helios
