// Plain-text table rendering for the benchmark harness, so every bench
// binary can print rows in the same layout the paper's tables and figure
// series use.

#ifndef HELIOS_COMMON_TABLE_H_
#define HELIOS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace helios {

/// Accumulates rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TablePrinter t({"Protocol", "V", "O", "C", "I", "S", "Avg"});
///   t.AddRow({"Helios-0", "76", "14", ...});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void AddSeparator();

  /// Renders the table. First column is left-aligned, the rest right-aligned.
  std::string ToString() const;

  /// Formats a double with `digits` decimal places.
  static std::string Num(double v, int digits = 1);
  /// Formats "mean (stddev)" like the paper's Table 2 cells.
  static std::string MeanStd(double mean, double stddev, int digits = 0);

 private:
  std::vector<std::string> header_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace helios

#endif  // HELIOS_COMMON_TABLE_H_
