// A minimal command-line flag parser (--key=value / --key value / --bool)
// for the CLI tools. No global registry: callers construct a FlagSet,
// declare flags, and parse argv.

#ifndef HELIOS_COMMON_FLAGS_H_
#define HELIOS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace helios {

class FlagSet {
 public:
  /// Declares a flag with a default and a help string.
  void DefineString(const std::string& name, std::string default_value,
                    std::string help);
  void DefineInt(const std::string& name, int64_t default_value,
                 std::string help);
  void DefineDouble(const std::string& name, double default_value,
                    std::string help);
  void DefineBool(const std::string& name, bool default_value,
                  std::string help);

  /// Parses argv (skipping argv[0]). Unknown flags or malformed values are
  /// errors. Non-flag arguments are collected into positional().
  Status Parse(int argc, const char* const* argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  bool IsSet(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every declared flag with its default and help.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace helios

#endif  // HELIOS_COMMON_FLAGS_H_
