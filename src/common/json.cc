#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace helios::json {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  Result<Value> Run() {
    Value v;
    Status st = ParseValue(&v);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) return Error("trailing characters");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->text);
      case 't':
      case 'f':
        out->kind = Value::Kind::kBool;
        if (s_.compare(pos_, 4, "true") == 0) {
          out->boolean = true;
          pos_ += 4;
          return Status::Ok();
        }
        if (s_.compare(pos_, 5, "false") == 0) {
          out->boolean = false;
          pos_ += 5;
          return Status::Ok();
        }
        return Error("bad literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          out->kind = Value::Kind::kNull;
          pos_ += 4;
          return Status::Ok();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Error("unterminated escape");
        switch (s_[pos_]) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = s_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape");
              }
            }
            if (code > 0x7F) return Error("non-ASCII \\u escape unsupported");
            *out += static_cast<char>(code);
            pos_ += 4;
            break;
          }
          default:
            return Error("bad escape");
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character");
      } else {
        *out += c;
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    out->kind = Value::Kind::kNumber;
    out->text = s_.substr(start, pos_ - start);
    const char* begin = out->text.data();
    const char* end = begin + out->text.size();
    const auto res = std::from_chars(begin, end, out->number);
    if (res.ec != std::errc() || res.ptr != end) return Error("bad number");
    return Status::Ok();
  }

  Status ParseArray(Value* out) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      Value item;
      Status st = ParseValue(&item);
      if (!st.ok()) return st;
      out->items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= s_.size()) return Error("unterminated array");
      if (s_[pos_] == ']') {
        ++pos_;
        return Status::Ok();
      }
      if (s_[pos_] != ',') return Error("expected ',' or ']'");
      ++pos_;
    }
  }

  Status ParseObject(Value* out) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') return Error("expected key");
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return Error("expected ':'");
      ++pos_;
      Value value;
      st = ParseValue(&value);
      if (!st.ok()) return st;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= s_.size()) return Error("unterminated object");
      if (s_[pos_] == '}') {
        ++pos_;
        return Status::Ok();
      }
      if (s_[pos_] != ',') return Error("expected ',' or '}'");
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& s) { return Parser(s).Run(); }

Status WrongType(const std::string& key, const char* want) {
  return Status::InvalidArgument("field '" + key + "' must be " + want);
}

Status ReadInt64(const std::string& key, const Value& v, int64_t* out) {
  if (v.kind != Value::Kind::kNumber) return WrongType(key, "a number");
  const char* begin = v.text.data();
  const char* end = begin + v.text.size();
  const auto res = std::from_chars(begin, end, *out);
  if (res.ec != std::errc() || res.ptr != end) {
    return WrongType(key, "an integer");
  }
  return Status::Ok();
}

Status ReadUint64(const std::string& key, const Value& v, uint64_t* out) {
  if (v.kind != Value::Kind::kNumber) return WrongType(key, "a number");
  const char* begin = v.text.data();
  const char* end = begin + v.text.size();
  const auto res = std::from_chars(begin, end, *out);
  if (res.ec != std::errc() || res.ptr != end) {
    return WrongType(key, "an unsigned integer");
  }
  return Status::Ok();
}

Status ReadInt(const std::string& key, const Value& v, int* out) {
  int64_t wide = 0;
  Status st = ReadInt64(key, v, &wide);
  if (!st.ok()) return st;
  if (wide < INT32_MIN || wide > INT32_MAX) {
    return WrongType(key, "a 32-bit integer");
  }
  *out = static_cast<int>(wide);
  return Status::Ok();
}

Status ReadDouble(const std::string& key, const Value& v, double* out) {
  if (v.kind != Value::Kind::kNumber) return WrongType(key, "a number");
  *out = v.number;
  return Status::Ok();
}

Status ReadBool(const std::string& key, const Value& v, bool* out) {
  if (v.kind != Value::Kind::kBool) return WrongType(key, "a boolean");
  *out = v.boolean;
  return Status::Ok();
}

Status ReadString(const std::string& key, const Value& v, std::string* out) {
  if (v.kind != Value::Kind::kString) return WrongType(key, "a string");
  *out = v.text;
  return Status::Ok();
}

}  // namespace helios::json
