#include "common/random.h"

#include <cassert>
#include <cmath>

namespace helios {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t idx = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

}  // namespace helios
