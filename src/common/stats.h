// Descriptive statistics used by the experiment harness to report commit
// latency, throughput, and abort rates in the same form as the paper
// (mean, standard deviation, confidence intervals, percentiles).

#ifndef HELIOS_COMMON_STATS_H_
#define HELIOS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace helios {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class StatAccumulator {
 public:
  void Add(double x);
  void Merge(const StatAccumulator& other);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double variance() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Half-width of the ~95% confidence interval for the mean
  /// (normal approximation, 1.96 * stderr). 0 for fewer than 2 samples.
  double ci95_half_width() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining distribution for percentile queries. Keeps every sample;
/// experiments here are small enough that this is fine, and it keeps
/// percentiles exact.
class Distribution {
 public:
  void Add(double x);
  size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// `p` in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace helios

#endif  // HELIOS_COMMON_STATS_H_
