// Exception-free error handling: `Status` for operations that can fail and
// `Result<T>` for operations that produce a value or an error, in the style
// used by production database codebases.

#ifndef HELIOS_COMMON_STATUS_H_
#define HELIOS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace helios {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kAborted,
  kUnavailable,
  kInternal,
};

/// Returns a stable lowercase name for `code`, e.g. "not_found".
const char* StatusCodeName(StatusCode code);

/// The outcome of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`. Never both.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` from Result-returning
  /// functions, matching common StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace helios

#endif  // HELIOS_COMMON_STATUS_H_
