#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace helios {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const size_t pad = widths[c] > cell.size() ? widths[c] - cell.size() : 0;
      if (c == 0) {
        line += cell + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + cell;
      }
      if (c + 1 < widths.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  rule += '\n';

  std::string out = render_line(header_);
  out += rule;
  for (const Row& row : rows_) {
    out += row.separator ? rule : render_line(row.cells);
  }
  return out;
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::MeanStd(double mean, double stddev, int digits) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f (%.1f)", digits, mean, stddev);
  return buf;
}

}  // namespace helios
