// Shared deterministic-JSON toolkit: a writer that emits stable-key
// documents with shortest-round-trip numbers, and a minimal RFC 8259
// parser with typed field extractors.
//
// Hoisted out of harness/experiment_spec.cc so every JSON-round-trippable
// config in the tree (ExperimentSpec, sim::FaultPlan, ...) shares one
// audited implementation instead of growing private parsers. The emission
// rules are part of the sweep-JSON determinism contract: keys in a fixed
// order chosen by the caller, numbers via std::to_chars (shortest exact
// representation), no whitespace.

#ifndef HELIOS_COMMON_JSON_H_
#define HELIOS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace helios::json {

// --- Emission ---------------------------------------------------------------

/// Appends `s` as a quoted JSON string with the escapes the parser accepts.
void AppendEscaped(std::string* out, const std::string& s);

/// Appends the shortest representation of `v` that round-trips exactly;
/// deterministic across runs, which the sweep JSON contract requires.
void AppendDouble(std::string* out, double v);

/// Builds one flat JSON object. The caller is responsible for key order
/// (alphabetical, per the deterministic-JSON convention).
class ObjectWriter {
 public:
  explicit ObjectWriter(std::string* out) : out_(out) { *out_ += '{'; }
  void Key(const char* key) {
    if (!first_) *out_ += ',';
    first_ = false;
    AppendEscaped(out_, key);
    *out_ += ':';
  }
  /// Key followed by pre-rendered JSON (nested objects/arrays).
  void Raw(const char* key, const std::string& rendered) {
    Key(key);
    *out_ += rendered;
  }
  void Field(const char* key, const std::string& v) {
    Key(key);
    AppendEscaped(out_, v);
  }
  void Field(const char* key, bool v) {
    Key(key);
    *out_ += v ? "true" : "false";
  }
  void Field(const char* key, int64_t v) {
    Key(key);
    *out_ += std::to_string(v);
  }
  void Field(const char* key, uint64_t v) {
    Key(key);
    *out_ += std::to_string(v);
  }
  void Field(const char* key, double v) {
    Key(key);
    AppendDouble(out_, v);
  }
  void Close() { *out_ += '}'; }

 private:
  std::string* out_;
  bool first_ = true;
};

// --- Parsing ----------------------------------------------------------------

/// Parsed JSON value. Numbers keep their raw token in `text` so integer
/// fields can be re-parsed losslessly.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< String payload, and the raw token for numbers.
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;
};

/// Parses a complete JSON document: objects, arrays, strings with the
/// escapes ObjectWriter emits, numbers, booleans, null. Errors carry a
/// byte offset.
Result<Value> Parse(const std::string& s);

// --- Typed field extraction -------------------------------------------------
//
// Each reads one Value into a typed output, returning InvalidArgument
// ("field '<key>' must be ...") on a kind or range mismatch.

Status WrongType(const std::string& key, const char* want);
Status ReadInt64(const std::string& key, const Value& v, int64_t* out);
Status ReadUint64(const std::string& key, const Value& v, uint64_t* out);
Status ReadInt(const std::string& key, const Value& v, int* out);
Status ReadDouble(const std::string& key, const Value& v, double* out);
Status ReadBool(const std::string& key, const Value& v, bool* out);
Status ReadString(const std::string& key, const Value& v, std::string* out);

}  // namespace helios::json

#endif  // HELIOS_COMMON_JSON_H_
