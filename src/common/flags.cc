#include "common/flags.h"

#include <cstdlib>

namespace helios {

void FlagSet::DefineString(const std::string& name, std::string default_value,
                           std::string help) {
  flags_[name] = Flag{Type::kString, default_value, std::move(default_value),
                      std::move(help)};
}

void FlagSet::DefineInt(const std::string& name, int64_t default_value,
                        std::string help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, v, v, std::move(help)};
}

void FlagSet::DefineDouble(const std::string& name, double default_value,
                           std::string help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Type::kDouble, v, v, std::move(help)};
}

void FlagSet::DefineBool(const std::string& name, bool default_value,
                         std::string help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, v, v, std::move(help)};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects an integer");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects a number");
      }
      break;
    }
    case Type::kBool:
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        return Status::InvalidArgument("--" + name + " expects true/false");
      }
      break;
    case Type::kString:
      break;
  }
  flag.value = value;
  flag.set = true;
  return Status::Ok();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      Status s = SetValue(arg.substr(0, eq), arg.substr(eq + 1));
      if (!s.ok()) return s;
      continue;
    }
    // "--flag value" or bare boolean "--flag".
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (it->second.type == Type::kBool) {
      Status s = SetValue(arg, "true");
      if (!s.ok()) return s;
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("--" + arg + " needs a value");
      }
      Status s = SetValue(arg, argv[++i]);
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

std::string FlagSet::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1";
}

bool FlagSet::IsSet(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string FlagSet::Help() const {
  std::string out;
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.default_value + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace helios
