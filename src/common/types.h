// Core identifier and time types shared by every Helios module.

#ifndef HELIOS_COMMON_TYPES_H_
#define HELIOS_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace helios {

/// Index of a datacenter within a deployment, 0..n-1.
using DcId = int32_t;

/// Sentinel for "no datacenter".
inline constexpr DcId kInvalidDc = -1;

/// A reading of some datacenter's local clock, in microseconds.
///
/// Timestamps from different datacenters are *not* comparable as wall-clock
/// instants (clocks are only loosely synchronized); they are comparable as
/// log positions of a single origin, and Helios compares cross-origin
/// timestamps only through the knowledge-timestamp machinery that tolerates
/// skew.
using Timestamp = int64_t;

/// A span of (simulated or local-clock) time, in microseconds.
using Duration = int64_t;

/// Sentinel timestamp smaller than every valid timestamp.
inline constexpr Timestamp kMinTimestamp = INT64_MIN / 4;

/// Converts milliseconds to the library's microsecond `Duration`.
constexpr Duration Millis(int64_t ms) { return ms * 1000; }

/// Converts microseconds to `Duration` (identity; documents intent).
constexpr Duration Micros(int64_t us) { return us; }

/// Converts seconds to `Duration`.
constexpr Duration Seconds(int64_t s) { return s * 1000 * 1000; }

/// Converts a `Duration` to fractional milliseconds for reporting.
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1000.0; }

/// Globally unique transaction identifier: the issuing datacenter plus a
/// per-datacenter sequence number.
struct TxnId {
  DcId origin = kInvalidDc;
  uint64_t seq = 0;

  friend bool operator==(const TxnId& a, const TxnId& b) {
    return a.origin == b.origin && a.seq == b.seq;
  }
  friend bool operator!=(const TxnId& a, const TxnId& b) { return !(a == b); }
  friend bool operator<(const TxnId& a, const TxnId& b) {
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.seq < b.seq;
  }

  bool valid() const { return origin != kInvalidDc; }

  /// Renders as "origin:seq", e.g. "2:41".
  std::string ToString() const;
};

struct TxnIdHash {
  size_t operator()(const TxnId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.origin) << 48) ^ id.seq);
  }
};

/// Keys and values stored in the replicated data store.
using Key = std::string;
using Value = std::string;

}  // namespace helios

#endif  // HELIOS_COMMON_TYPES_H_
