#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace helios {

void StatAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::Merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::Reset() { *this = StatAccumulator(); }

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

double StatAccumulator::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void Distribution::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Distribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Distribution::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double s : samples_) m2 += (s - m) * (s - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double Distribution::min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Distribution::max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Distribution::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace helios
