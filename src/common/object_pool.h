// Free-list object pool for hot-path allocations (envelopes, in-flight
// messages). Objects are handed out as shared_ptrs whose deleter returns
// the object to the pool instead of freeing it, so steady-state traffic
// recycles a small working set and the heap sees no per-message churn.
//
// The pool may die while objects are still in flight (a simulated
// datacenter crash destroys its node — and the node's pool — while the
// network still holds envelopes scheduled for delivery). The deleter only
// holds a weak reference to the pool's free list: if the pool is gone by
// the time the last handle drops, the object is simply deleted.
//
// Not thread-safe: the simulator is single-threaded and the live path
// acquires/releases on its event-loop thread.

#ifndef HELIOS_COMMON_OBJECT_POOL_H_
#define HELIOS_COMMON_OBJECT_POOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace helios::common {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() : state_(std::make_shared<State>()) {}
  ~ObjectPool() {
    if (state_) state_->alive = false;
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Returns a recycled object if one is idle, else constructs a new one
  /// from `args`. Recycled objects keep whatever state they were released
  /// with (that is the point — retained vector capacity), so callers must
  /// reset the fields they care about.
  template <typename... Args>
  std::shared_ptr<T> Acquire(Args&&... args) {
    T* raw = nullptr;
    if (!state_->free.empty()) {
      raw = state_->free.back().release();
      state_->free.pop_back();
      ++state_->reused;
    } else {
      raw = new T(std::forward<Args>(args)...);
      ++state_->created;
    }
    std::weak_ptr<State> weak = state_;
    return std::shared_ptr<T>(raw, [weak](T* p) {
      if (auto s = weak.lock(); s && s->alive) {
        s->free.emplace_back(p);
      } else {
        delete p;
      }
    });
  }

  size_t idle() const { return state_->free.size(); }
  uint64_t created() const { return state_->created; }
  uint64_t reused() const { return state_->reused; }

 private:
  struct State {
    std::vector<std::unique_ptr<T>> free;
    bool alive = true;
    uint64_t created = 0;
    uint64_t reused = 0;
  };

  std::shared_ptr<State> state_;
};

}  // namespace helios::common

#endif  // HELIOS_COMMON_OBJECT_POOL_H_
