// Deterministic pseudo-random number generation used throughout the
// simulator. All experiments are reproducible given a seed.

#ifndef HELIOS_COMMON_RANDOM_H_
#define HELIOS_COMMON_RANDOM_H_

#include <cstdint>

namespace helios {

/// A small, fast, deterministic PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can also drive
/// standard distributions, though the convenience members below are the
/// preferred interface.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal deviate (Box-Muller, cached pair).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Derives an independent child generator; convenient for giving each
  /// simulated component its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// YCSB-style Zipfian generator over [0, n). Uses the Gray et al. algorithm
/// with precomputed zeta constants, matching the distribution T-YCSB uses to
/// pick keys from its 50,000-key pool.
class ZipfianGenerator {
 public:
  /// `theta` is the skew parameter; YCSB's default is 0.99.
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Next item in [0, n), lower values being more popular.
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Uniform generator over [0, n) with the same interface as
/// ZipfianGenerator, for workloads without skew.
class UniformKeyGenerator {
 public:
  explicit UniformKeyGenerator(uint64_t n) : n_(n) {}
  uint64_t Next(Rng& rng) { return rng.Uniform(n_); }

 private:
  uint64_t n_;
};

}  // namespace helios

#endif  // HELIOS_COMMON_RANDOM_H_
