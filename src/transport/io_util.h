// Robust byte-level socket I/O shared by the live transport stack
// (TcpTransport, heliosd's control channel): full-length reads and writes
// that survive the partial transfers POSIX permits.
//
// A blocking send() may still transfer fewer bytes than requested (signal
// delivery mid-copy), return EINTR without transferring anything, or — on
// a non-blocking socket — return EAGAIN when the kernel buffer is full.
// Naive loops that treat any short return as a dead connection turn those
// recoverable conditions into spurious link failures; under load (small
// SO_SNDBUF, saturated peer) that looks like a flaky network. These
// helpers retry EINTR, continue after partial transfers, and poll() the
// descriptor through EAGAIN/EWOULDBLOCK, so the only failures they report
// are real ones (peer closed, ECONNRESET, EPIPE).

#ifndef HELIOS_TRANSPORT_IO_UTIL_H_
#define HELIOS_TRANSPORT_IO_UTIL_H_

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace helios::transport {

/// Reads exactly `len` bytes from `fd`. Returns false on EOF or a
/// non-recoverable error; EINTR and short reads are retried, EAGAIN waits
/// for readability.
inline bool ReadFull(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return false;  // Orderly shutdown by the peer.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, /*timeout_ms=*/10000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

/// Writes exactly `len` bytes to `fd`. Short writes continue where they
/// left off, EINTR retries, EAGAIN polls for writability; MSG_NOSIGNAL
/// turns a dead peer into EPIPE instead of SIGPIPE. Returns false only on
/// a non-recoverable error.
inline bool WriteFull(int fd, const uint8_t* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, /*timeout_ms=*/10000) <= 0) return false;
      continue;
    }
    return false;  // EPIPE, ECONNRESET, or another hard failure.
  }
  return true;
}

}  // namespace helios::transport

#endif  // HELIOS_TRANSPORT_IO_UTIL_H_
