// Length-framed TCP message transport between datacenters: the real-world
// counterpart of sim::Network, used by live deployments
// (transport/live_datacenter.h) to ship wire-serialized envelopes over
// actual sockets.
//
// Each node binds a listening socket (port 0 picks an ephemeral port, see
// port()), accepts inbound peer connections on a background thread, and
// dials peers on demand. Every message is `u32 little-endian length`
// followed by that many payload bytes (the payload is itself a CRC-framed
// wire message, so corruption is detected one layer up). Received payloads
// are handed to the registered handler on the reader thread — callers
// typically Post() them onto their RealtimeLoop.

#ifndef HELIOS_TRANSPORT_TCP_TRANSPORT_H_
#define HELIOS_TRANSPORT_TCP_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace helios::transport {

class TcpTransport {
 public:
  /// Called with each received payload (the length prefix stripped), on an
  /// internal reader thread.
  using MessageHandler = std::function<void(std::vector<uint8_t> payload)>;

  explicit TcpTransport(MessageHandler handler);
  ~TcpTransport();
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral) and starts the
  /// accept thread.
  Status Listen(uint16_t port);

  /// The actual bound port (valid after Listen).
  uint16_t port() const { return port_; }

  /// Dials 127.0.0.1:`port` for peer `to`; retries briefly while the peer
  /// is still coming up.
  Status Connect(DcId to, uint16_t port);

  /// Sends one framed message to `to`. Requires a prior Connect(to, ...).
  /// If the connection has died (peer restarted, socket reset), closes it
  /// and redials once — never sleeping, since sends run on the owner's
  /// event-loop thread — before giving up; a per-peer cooldown (50 ms)
  /// keeps a long outage from dialing on every log tick. Callers retry
  /// naturally (the next tick resends), so a transient peer outage costs
  /// fast failures instead of a stalled loop.
  ///
  /// The span form borrows the caller's bytes for the duration of the
  /// call (pair it with a reused wire::Buffer for a copy-free send path);
  /// the vector overload simply forwards.
  Status Send(DcId to, const uint8_t* data, size_t len);
  Status Send(DcId to, const std::vector<uint8_t>& payload) {
    return Send(to, payload.data(), payload.size());
  }

  /// Administratively refuses the connection to `to` (chaos partition):
  /// the live socket is closed, sends fail fast with "peer blocked", and
  /// no redial happens until the block is lifted. Blocking is one-
  /// directional; a bidirectional cut blocks at both endpoints.
  void SetPeerBlocked(DcId to, bool blocked);

  /// Closes everything and joins the background threads.
  void Shutdown();

  uint64_t messages_received() const { return messages_received_; }
  uint64_t messages_sent() const { return messages_sent_; }
  /// Successful redials performed inside Send() after a dead connection.
  /// Counts exactly one per installed reconnection: a dial that fails, or
  /// whose socket loses the install race (another sender reconnected, or
  /// the peer was blocked meanwhile), does not increment.
  uint64_t reconnects() const { return reconnects_; }
  /// Sends refused because the peer was administratively blocked.
  uint64_t sends_blocked() const { return sends_blocked_; }
  /// Longest remaining redial cooldown across disconnected peers, in
  /// milliseconds (0 when every peer is connected or may redial now).
  /// Exported by heliosd so an operator can tell "outage, backing off"
  /// from "healthy but idle" in the transport metrics.
  int64_t redial_cooldown_remaining_ms() const;

 private:
  /// Minimum spacing between redial attempts to a dead peer.
  static constexpr int kRedialCooldownMs = 50;

  struct Peer {
    DcId id;
    int fd;         // -1 while disconnected.
    uint16_t port;  // Remembered so Send() can redial (0 = never dialed).
    bool blocked = false;  // Administratively partitioned.
    /// Earliest time Send() may redial this peer after a failure.
    std::chrono::steady_clock::time_point next_redial{};
  };

  void AcceptLoop();
  void ReadLoop(int fd);
  void SpawnReader(int fd);
  /// One dial attempt to 127.0.0.1:`port`; returns the fd or -1.
  int DialPeer(uint16_t port);
  /// One framed write on the current connection; marks it dead on failure.
  Status SendOnce(DcId to, const uint8_t* data, size_t len);

  MessageHandler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::vector<Peer> peers_;       // Outbound connections.
  std::vector<int> inbound_fds_;  // Accepted connections.
  std::vector<std::thread> readers_;
  std::atomic<uint64_t> messages_received_{0};
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> sends_blocked_{0};
};

}  // namespace helios::transport

#endif  // HELIOS_TRANSPORT_TCP_TRANSPORT_H_
