#include "transport/cluster_spec.h"

#include <set>

#include "common/json.h"

namespace helios::transport {

std::vector<uint16_t> ClusterSpec::ports(int shard) const {
  std::vector<uint16_t> out;
  out.reserve(datacenters.size());
  for (int dc = 0; dc < num_datacenters(); ++dc) {
    out.push_back(PortOf(dc, shard));
  }
  return out;
}

uint16_t ClusterSpec::PortOf(int dc, int shard) const {
  return static_cast<uint16_t>(
      datacenters[static_cast<size_t>(dc)].port +
      static_cast<uint32_t>(shard) *
          static_cast<uint32_t>(num_datacenters()));
}

std::string ClusterSpec::WalPathFor(int dc, int shard) const {
  const std::string& base = datacenters[static_cast<size_t>(dc)].wal_path;
  if (shards <= 1 || base.empty()) return base;
  return base + ".s" + std::to_string(shard);
}

core::HeliosConfig ClusterSpec::MakeConfig() const {
  core::HeliosConfig config;
  config.num_datacenters = num_datacenters();
  config.fault_tolerance = fault_tolerance;
  config.grace_time = grace_time;
  config.log_interval = log_interval;
  config.health.enabled = health_enabled;
  return config;
}

Status ClusterSpec::Validate() const {
  if (datacenters.empty()) {
    return Status::InvalidArgument("cluster spec has no datacenters");
  }
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1 (got " +
                                   std::to_string(shards) + ")");
  }
  // Every (dc, shard) cell listens on its own derived port; a collision
  // between planes (e.g. contiguous base ports with a stride that folds
  // shard 1 of dc 0 onto shard 0 of dc 1) must fail here, not as a
  // mysterious bind error at launch.
  std::set<uint32_t> seen;
  for (size_t i = 0; i < datacenters.size(); ++i) {
    const DatacenterSpec& dc = datacenters[i];
    if (dc.port == 0) {
      return Status::InvalidArgument("datacenter " + std::to_string(i) +
                                     ": port must be nonzero");
    }
    for (int s = 0; s < shards; ++s) {
      const uint32_t port =
          dc.port + static_cast<uint32_t>(s) *
                        static_cast<uint32_t>(datacenters.size());
      if (port > 65535) {
        return Status::InvalidArgument(
            "datacenter " + std::to_string(i) + " shard " +
            std::to_string(s) + ": derived port " + std::to_string(port) +
            " exceeds 65535");
      }
      if (!seen.insert(port).second) {
        return Status::InvalidArgument(
            "datacenter " + std::to_string(i) + " shard " +
            std::to_string(s) + ": derived port " + std::to_string(port) +
            " collides with another (datacenter, shard) cell");
      }
    }
  }
  if (fault_tolerance < 0 ||
      fault_tolerance >= static_cast<int>(datacenters.size())) {
    return Status::InvalidArgument("fault_tolerance out of range");
  }
  if (grace_time <= 0) {
    return Status::InvalidArgument("grace_time_ms must be positive");
  }
  if (log_interval <= 0) {
    return Status::InvalidArgument("log_interval_ms must be positive");
  }
  if (inbound_delay < 0) {
    return Status::InvalidArgument("inbound_delay_ms must be non-negative");
  }
  if (wal_options.group_commit_interval.count() < 0) {
    return Status::InvalidArgument("group_commit_us must be non-negative");
  }
  return Status::Ok();
}

std::string ClusterSpec::ToJson() const {
  std::string dcs = "[";
  for (size_t i = 0; i < datacenters.size(); ++i) {
    if (i > 0) dcs += ',';
    std::string row;
    json::ObjectWriter w(&row);
    w.Field("port", static_cast<uint64_t>(datacenters[i].port));
    w.Field("wal", datacenters[i].wal_path);
    w.Close();
    dcs += row;
  }
  dcs += ']';

  std::string out;
  json::ObjectWriter w(&out);
  w.Raw("datacenters", dcs);
  w.Field("fault_tolerance", static_cast<int64_t>(fault_tolerance));
  w.Field("fsync", std::string(wal::SyncPolicyName(wal_options.policy)));
  w.Field("grace_time_ms", static_cast<int64_t>(grace_time / 1000));
  w.Field("group_commit_us",
          static_cast<int64_t>(wal_options.group_commit_interval.count()));
  if (health_enabled) w.Field("health_enabled", true);
  w.Field("inbound_delay_ms", static_cast<int64_t>(inbound_delay / 1000));
  w.Field("log_interval_ms", static_cast<int64_t>(log_interval / 1000));
  if (shards != 1) w.Field("shards", static_cast<int64_t>(shards));
  w.Close();
  return out;
}

namespace {

Status ParseDatacenter(const json::Value& v, DatacenterSpec* out) {
  if (v.kind != json::Value::Kind::kObject) {
    return Status::InvalidArgument("datacenters entries must be objects");
  }
  for (const auto& [key, value] : v.members) {
    if (key == "port") {
      int64_t port = 0;
      Status s = json::ReadInt64(key, value, &port);
      if (!s.ok()) return s;
      if (port <= 0 || port > 65535) {
        return Status::InvalidArgument("port out of range");
      }
      out->port = static_cast<uint16_t>(port);
    } else if (key == "wal") {
      Status s = json::ReadString(key, value, &out->wal_path);
      if (!s.ok()) return s;
    } else {
      return Status::InvalidArgument("unknown datacenter key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ReadMillis(const std::string& key, const json::Value& v,
                  Duration* out) {
  int64_t ms = 0;
  Status s = json::ReadInt64(key, v, &ms);
  if (!s.ok()) return s;
  *out = Millis(ms);
  return Status::Ok();
}

}  // namespace

Result<ClusterSpec> ClusterSpec::FromJson(const std::string& text) {
  auto parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const json::Value& root = parsed.value();
  if (root.kind != json::Value::Kind::kObject) {
    return Status::InvalidArgument("cluster spec must be a JSON object");
  }
  ClusterSpec spec;
  for (const auto& [key, value] : root.members) {
    if (key == "datacenters") {
      if (value.kind != json::Value::Kind::kArray) {
        return json::WrongType(key, "array");
      }
      for (const json::Value& item : value.items) {
        DatacenterSpec dc;
        Status s = ParseDatacenter(item, &dc);
        if (!s.ok()) return s;
        spec.datacenters.push_back(std::move(dc));
      }
    } else if (key == "fault_tolerance") {
      Status s = json::ReadInt(key, value, &spec.fault_tolerance);
      if (!s.ok()) return s;
    } else if (key == "fsync") {
      std::string name;
      Status s = json::ReadString(key, value, &name);
      if (!s.ok()) return s;
      auto policy = wal::ParseSyncPolicy(name);
      if (!policy.ok()) return policy.status();
      spec.wal_options.policy = policy.value();
    } else if (key == "grace_time_ms") {
      Status s = ReadMillis(key, value, &spec.grace_time);
      if (!s.ok()) return s;
    } else if (key == "group_commit_us") {
      int64_t us = 0;
      Status s = json::ReadInt64(key, value, &us);
      if (!s.ok()) return s;
      spec.wal_options.group_commit_interval = std::chrono::microseconds(us);
    } else if (key == "health_enabled") {
      Status s = json::ReadBool(key, value, &spec.health_enabled);
      if (!s.ok()) return s;
    } else if (key == "inbound_delay_ms") {
      Status s = ReadMillis(key, value, &spec.inbound_delay);
      if (!s.ok()) return s;
    } else if (key == "log_interval_ms") {
      Status s = ReadMillis(key, value, &spec.log_interval);
      if (!s.ok()) return s;
    } else if (key == "shards") {
      Status s = json::ReadInt(key, value, &spec.shards);
      if (!s.ok()) return s;
    } else {
      return Status::InvalidArgument("unknown cluster spec key '" + key +
                                     "'");
    }
  }
  return spec;
}

}  // namespace helios::transport
