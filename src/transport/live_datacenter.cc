#include "transport/live_datacenter.h"

#include <cassert>
#include <future>

#include "wire/serialization.h"

namespace helios::transport {

LiveDatacenter::LiveDatacenter(DcId id, core::HeliosConfig config,
                               Duration inbound_delay,
                               core::LogProtocolKind kind)
    : id_(id), config_(std::move(config)), inbound_delay_(inbound_delay) {
  const Duration offset =
      config_.clock_offsets.empty()
          ? 0
          : config_.clock_offsets[static_cast<size_t>(id)];
  clock_ = std::make_unique<sim::Clock>(&loop_.scheduler(), offset);
  transport_ = std::make_unique<TcpTransport>(
      [this](std::vector<uint8_t> payload) {
        OnWirePayload(std::move(payload));
      });
  node_ = std::make_unique<core::HeliosNode>(
      id_, config_, kind, &loop_.scheduler(), clock_.get(),
      [this](DcId to, const core::EnvelopePtr& env) {
        // Serialize on the loop thread; the socket write is brief
        // (localhost / kernel buffers) so it runs inline. The framer's
        // buffers are reused across sends — zero steady-state allocation.
        const wire::Buffer& frame = framer_.Frame(*env);
        (void)transport_->Send(to, frame.data(), frame.size());
      });
}

LiveDatacenter::~LiveDatacenter() { Stop(); }

Status LiveDatacenter::EnableWal(const std::string& path,
                                 bool fsync_each_record) {
  assert(!started_);
  auto contents = wal::ReplayWal(path);
  if (!contents.ok()) return contents.status();
  if (!contents.value().records.empty()) {
    const Status restored = node_->Restore(
        contents.value().records,
        contents.value().has_timetable ? &contents.value().timetable
                                       : nullptr);
    if (!restored.ok()) return restored;
  }
  wal_ = std::make_unique<wal::WalWriter>();
  Status opened = wal_->Open(path);
  if (!opened.ok()) return opened;
  node_->set_record_sink(
      [this, fsync_each_record](const rdict::LogRecord& rec) {
        (void)wal_->AppendRecord(rec);
        (void)wal_->Sync(fsync_each_record);
      });
  // Periodic knowledge checkpoint (the node emits one per GC tick): lets
  // Restore resume catch-up from the snapshot instead of replaying the
  // timetable from zero.
  node_->set_timetable_sink([this, fsync_each_record](const rdict::Timetable& t) {
    (void)wal_->AppendTimetable(t);
    (void)wal_->Sync(fsync_each_record);
  });
  return Status::Ok();
}

Status LiveDatacenter::Listen(uint16_t port) {
  return transport_->Listen(port);
}

Status LiveDatacenter::ConnectPeers(const std::vector<uint16_t>& ports) {
  assert(static_cast<int>(ports.size()) == config_.num_datacenters);
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    if (dc == id_) continue;
    Status s = transport_->Connect(dc, ports[static_cast<size_t>(dc)]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void LiveDatacenter::Start() {
  assert(!started_);
  started_ = true;
  loop_.Start();
  loop_.Post([this]() { node_->Start(); });
}

void LiveDatacenter::Stop() {
  if (!started_) {
    transport_->Shutdown();
    return;
  }
  started_ = false;
  // Stop the transport first so no reader thread posts into a dead loop.
  transport_->Shutdown();
  loop_.Stop();
}

void LiveDatacenter::OnWirePayload(std::vector<uint8_t> payload) {
  auto env = wire::UnframeEnvelope(payload);
  if (!env.ok()) return;  // Corrupted frame: drop (CRC did its job).
  loop_.Post([this, env = std::move(env).value()]() mutable {
    if (inbound_delay_ > 0) {
      loop_.scheduler().After(inbound_delay_,
                              [this, env = std::move(env)]() mutable {
                                node_->HandleEnvelope(std::move(env));
                              });
    } else {
      node_->HandleEnvelope(std::move(env));
    }
  });
}

void LiveDatacenter::Read(const Key& key, ReadCallback done) {
  loop_.Post([this, key, done = std::move(done)]() {
    node_->HandleRead(key, done);
  });
}

void LiveDatacenter::Commit(std::vector<ReadEntry> reads,
                            std::vector<WriteEntry> writes,
                            CommitCallback done) {
  loop_.Post([this, reads = std::move(reads), writes = std::move(writes),
              done = std::move(done)]() mutable {
    node_->HandleCommitRequest(std::move(reads), std::move(writes),
                               std::move(done));
  });
}

Result<VersionedValue> LiveDatacenter::ReadSync(const Key& key) {
  std::promise<Result<VersionedValue>> promise;
  auto future = promise.get_future();
  Read(key, [&promise](Result<VersionedValue> r) {
    promise.set_value(std::move(r));
  });
  return future.get();
}

CommitOutcome LiveDatacenter::CommitSync(std::vector<ReadEntry> reads,
                                         std::vector<WriteEntry> writes) {
  std::promise<CommitOutcome> promise;
  auto future = promise.get_future();
  Commit(std::move(reads), std::move(writes),
         [&promise](const CommitOutcome& o) { promise.set_value(o); });
  return future.get();
}

void LiveDatacenter::LoadInitial(const Key& key, const Value& value) {
  if (started_) {
    loop_.PostAndWait([this, &key, &value]() {
      node_->LoadInitial(key, value);
    });
  } else {
    node_->LoadInitial(key, value);
  }
}

core::NodeCounters LiveDatacenter::CountersSnapshot() {
  core::NodeCounters out;
  if (!started_) return node_->counters();
  loop_.PostAndWait([this, &out]() { out = node_->counters(); });
  return out;
}

}  // namespace helios::transport
