#include "transport/live_datacenter.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <map>
#include <sstream>

#include "wire/serialization.h"

namespace helios::transport {

LiveDatacenter::LiveDatacenter(DcId id, core::HeliosConfig config,
                               Duration inbound_delay,
                               core::LogProtocolKind kind)
    : id_(id), config_(std::move(config)), inbound_delay_(inbound_delay) {
  const Duration offset =
      config_.clock_offsets.empty()
          ? 0
          : config_.clock_offsets[static_cast<size_t>(id)];
  clock_ = std::make_unique<sim::Clock>(&loop_.scheduler(), offset);
  transport_ = std::make_unique<TcpTransport>(
      [this](std::vector<uint8_t> payload) {
        OnWirePayload(std::move(payload));
      });
  node_ = std::make_unique<core::HeliosNode>(
      id_, config_, kind, &loop_.scheduler(), clock_.get(),
      [this](DcId to, const core::EnvelopePtr& env) {
        // Serialize on the loop thread; the socket write is brief
        // (localhost / kernel buffers) so it runs inline. The framer's
        // buffers are reused across sends — zero steady-state allocation.
        const wire::Buffer& frame = framer_.Frame(*env);
        (void)transport_->Send(to, frame.data(), frame.size());
      });
}

LiveDatacenter::~LiveDatacenter() { Stop(); }

Status LiveDatacenter::EnableWal(const std::string& path,
                                 const wal::FileWalOptions& opts) {
  assert(!started_);
  auto recovered = wal::RecoverFileWal(path);
  if (!recovered.ok()) return recovered.status();
  const wal::WalContents& contents = recovered.value().contents;
  if (!contents.records.empty()) {
    const Status restored = node_->Restore(
        contents.records,
        contents.has_timetable ? &contents.timetable : nullptr);
    if (!restored.ok()) return restored;
    recovered_ = true;
    {
      std::lock_guard<std::mutex> lock(recovery_mu_);
      recovery_.records_replayed += contents.records.size();
    }
  }
  wal_ = std::make_unique<wal::FileWal>();
  Status opened = wal_->Open(path, opts);
  if (!opened.ok()) return opened;
  node_->set_record_sink([this](const rdict::LogRecord& rec) {
    (void)wal_->AppendRecord(rec);
  });
  // Periodic knowledge checkpoint (the node emits one per GC tick): lets
  // Restore resume catch-up from the snapshot instead of replaying the
  // timetable from zero.
  node_->set_timetable_sink([this](const rdict::Timetable& t) {
    (void)wal_->AppendTimetable(t);
  });
  return Status::Ok();
}

Status LiveDatacenter::Listen(uint16_t port) {
  return transport_->Listen(port);
}

Status LiveDatacenter::ConnectPeers(const std::vector<uint16_t>& ports) {
  assert(static_cast<int>(ports.size()) == config_.num_datacenters);
  for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
    if (dc == id_) continue;
    Status s = transport_->Connect(dc, ports[static_cast<size_t>(dc)]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void LiveDatacenter::Start() {
  assert(!started_);
  started_ = true;
  loop_.Start();
  loop_.Post([this]() {
    node_->Start();
    if (recovered_) {
      // The WAL restored everything this node logged before the crash;
      // anti-entropy pulls the suffix the peers committed while it was
      // down. Until the catch-up completes the node answers clients with
      // "recovering" instead of serving stale state.
      node_->BeginCatchup([this](const core::RecoveryOutcome& out) {
        std::lock_guard<std::mutex> lock(recovery_mu_);
        ++recovery_.recoveries;
        recovery_.catchup_records += out.catchup_records;
        recovery_.duration_us +=
            static_cast<uint64_t>(out.finished_sim - out.started_sim);
      });
    }
  });
}

void LiveDatacenter::Stop() {
  if (!started_) {
    transport_->Shutdown();
    return;
  }
  started_ = false;
  // Stop the transport first so no reader thread posts into a dead loop.
  transport_->Shutdown();
  loop_.Stop();
  SyncWal();
}

void LiveDatacenter::SyncWal() {
  if (wal_ != nullptr && wal_->is_open()) (void)wal_->SyncToDisk();
}

void LiveDatacenter::OnWirePayload(std::vector<uint8_t> payload) {
  auto env = wire::UnframeEnvelope(payload);
  if (!env.ok()) return;  // Corrupted frame: drop (CRC did its job).
  loop_.Post([this, env = std::move(env).value()]() mutable {
    if (inbound_delay_ > 0) {
      loop_.scheduler().After(inbound_delay_,
                              [this, env = std::move(env)]() mutable {
                                node_->HandleEnvelope(std::move(env));
                              });
    } else {
      node_->HandleEnvelope(std::move(env));
    }
  });
}

void LiveDatacenter::Read(const Key& key, ReadCallback done) {
  loop_.Post([this, key, done = std::move(done)]() {
    node_->HandleRead(key, done);
  });
}

void LiveDatacenter::Commit(std::vector<ReadEntry> reads,
                            std::vector<WriteEntry> writes,
                            CommitCallback done) {
  if (admission_.enabled()) {
    const bool budget_full =
        admission_.max_inflight > 0 &&
        inflight_.load(std::memory_order_relaxed) >= admission_.max_inflight;
    const bool backlogged =
        admission_.queue_watermark > 0 &&
        loop_.queue_depth() >= admission_.queue_watermark;
    if (budget_full || backlogged) {
      // Shed at the door, on the caller's thread: the whole point is to
      // keep overload work off the loop. Clients recognize "busy" and
      // back off (workload::kBusyAbortReason).
      shed_.fetch_add(1, std::memory_order_relaxed);
      done(CommitOutcome{TxnId{}, false, "busy"});
      return;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    loop_.Post([this, reads = std::move(reads), writes = std::move(writes),
                done = std::move(done)]() mutable {
      node_->HandleCommitRequest(
          std::move(reads), std::move(writes),
          [this, done = std::move(done)](const CommitOutcome& o) {
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            done(o);
          });
    });
    return;
  }
  loop_.Post([this, reads = std::move(reads), writes = std::move(writes),
              done = std::move(done)]() mutable {
    node_->HandleCommitRequest(std::move(reads), std::move(writes),
                               std::move(done));
  });
}

Result<VersionedValue> LiveDatacenter::ReadSync(const Key& key) {
  std::promise<Result<VersionedValue>> promise;
  auto future = promise.get_future();
  Read(key, [&promise](Result<VersionedValue> r) {
    promise.set_value(std::move(r));
  });
  return future.get();
}

CommitOutcome LiveDatacenter::CommitSync(std::vector<ReadEntry> reads,
                                         std::vector<WriteEntry> writes) {
  std::promise<CommitOutcome> promise;
  auto future = promise.get_future();
  Commit(std::move(reads), std::move(writes),
         [&promise](const CommitOutcome& o) { promise.set_value(o); });
  return future.get();
}

void LiveDatacenter::LoadInitial(const Key& key, const Value& value) {
  if (started_) {
    loop_.PostAndWait([this, &key, &value]() {
      node_->LoadInitial(key, value);
    });
  } else {
    node_->LoadInitial(key, value);
  }
}

core::NodeCounters LiveDatacenter::CountersSnapshot() {
  core::NodeCounters out;
  if (!started_) return node_->counters();
  loop_.PostAndWait([this, &out]() { out = node_->counters(); });
  return out;
}

std::string LiveDatacenter::DumpStore() {
  std::map<Key, VersionedValue> latest;
  const auto collect = [this, &latest]() {
    node_->store().ForEachLatest(
        [&latest](const Key& key, const VersionedValue& vv) {
          latest[key] = vv;
        });
  };
  if (started_) {
    loop_.PostAndWait(collect);
  } else {
    collect();
  }
  std::ostringstream out;
  for (const auto& [key, vv] : latest) {
    out << key << '\t' << vv.value << '\t' << vv.ts << '\t'
        << static_cast<int>(vv.writer.origin) << ':' << vv.writer.seq << '\n';
  }
  return out.str();
}

OverloadStats LiveDatacenter::overload_snapshot() const {
  OverloadStats out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.inflight = inflight_.load(std::memory_order_relaxed);
  out.queue_depth = loop_.queue_depth();
  return out;
}

HealthSnapshot LiveDatacenter::health_snapshot() {
  HealthSnapshot out;
  if (!config_.health.enabled) return out;
  out.enabled = true;
  const size_t n = static_cast<size_t>(config_.num_datacenters);
  out.phi.assign(n, 0.0);
  out.suspected.assign(n, false);
  const auto collect = [this, &out]() {
    for (DcId dc = 0; dc < config_.num_datacenters; ++dc) {
      if (dc == id_) continue;
      out.phi[static_cast<size_t>(dc)] = node_->HealthPhi(dc);
      out.suspected[static_cast<size_t>(dc)] = node_->Suspects(dc);
    }
  };
  if (started_) {
    loop_.PostAndWait(collect);
  } else {
    collect();
  }
  return out;
}

RecoveryStats LiveDatacenter::recovery_snapshot() const {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  return recovery_;
}

}  // namespace helios::transport
