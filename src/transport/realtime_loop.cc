#include "transport/realtime_loop.h"

#include <cassert>
#include <future>

namespace helios::transport {

void RealtimeLoop::Start() {
  assert(!running_);
  stop_requested_ = false;
  running_ = true;
  epoch_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this]() { Run(); });
}

void RealtimeLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void RealtimeLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(fn));
  }
  cv_.notify_all();
}

void RealtimeLoop::PostAndWait(std::function<void()> fn) {
  assert(std::this_thread::get_id() != thread_.get_id());
  std::promise<void> done;
  Post([&fn, &done]() {
    fn();
    done.set_value();
  });
  done.get_future().wait();
}

Duration RealtimeLoop::Elapsed() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RealtimeLoop::Run() {
  for (;;) {
    // Drain externally posted work first; each item runs as a scheduler
    // event at the current time so its own After()/At() calls compose.
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) return;
      batch.swap(posted_);
    }
    for (auto& fn : batch) {
      scheduler_.At(Elapsed(), std::move(fn));
    }

    // Run everything due by now.
    scheduler_.RunUntil(Elapsed());

    // Sleep until the next scheduled event or an external post.
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_requested_) return;
    if (!posted_.empty()) continue;
    // Sleep until the next scheduled event (bounded so the loop stays
    // responsive even without wakeups).
    auto wait_for = std::chrono::microseconds(1000);
    const sim::SimTime next = scheduler_.NextEventTime();
    if (next >= 0) {
      const Duration until = next - Elapsed();
      if (until <= 0) continue;
      wait_for = std::min(wait_for, std::chrono::microseconds(until));
    }
    cv_.wait_for(lock, wait_for);
  }
}

}  // namespace helios::transport
