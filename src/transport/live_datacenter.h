// A live (non-simulated) Helios datacenter: the HeliosNode engine on a
// real-time event loop, exchanging wire-serialized envelopes with peers
// over TCP. This is the deployment shape a real multi-datacenter install
// would use — one process per datacenter — demonstrated over localhost by
// examples/live_demo.cpp and tests/transport_test.cc.
//
// An optional inbound delay emulates WAN latency when every "datacenter"
// actually lives on one machine.

#ifndef HELIOS_TRANSPORT_LIVE_DATACENTER_H_
#define HELIOS_TRANSPORT_LIVE_DATACENTER_H_

#include <memory>
#include <vector>

#include "api/protocol.h"
#include "core/helios_config.h"
#include "core/helios_node.h"
#include "sim/clock.h"
#include "transport/realtime_loop.h"
#include "transport/tcp_transport.h"
#include "wal/wal.h"
#include "wire/serialization.h"

namespace helios::transport {

class LiveDatacenter {
 public:
  /// `config.num_datacenters` covers the whole deployment; `id` is this
  /// process's index. `inbound_delay` is added to every received envelope
  /// (half of the emulated RTT when running all peers on localhost).
  LiveDatacenter(DcId id, core::HeliosConfig config,
                 Duration inbound_delay = 0,
                 core::LogProtocolKind kind = core::LogProtocolKind::kHelios);
  ~LiveDatacenter();
  LiveDatacenter(const LiveDatacenter&) = delete;
  LiveDatacenter& operator=(const LiveDatacenter&) = delete;

  /// Enables write-ahead logging at `path` and, if the file already has
  /// contents, recovers the node's state from it. Call before Start.
  /// `fsync_each_record` trades throughput for strict durability.
  Status EnableWal(const std::string& path, bool fsync_each_record = false);

  /// Binds the listening socket (0 = ephemeral). Call before Start.
  Status Listen(uint16_t port = 0);
  uint16_t port() const { return transport_->port(); }

  /// Dials every peer; `ports[dc]` is peer dc's port (own entry ignored).
  Status ConnectPeers(const std::vector<uint16_t>& ports);

  /// Starts the event loop and the node's periodic work.
  void Start();
  void Stop();

  // --- Client API (callbacks run on the loop thread) ----------------------

  void Read(const Key& key, ReadCallback done);
  void Commit(std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
              CommitCallback done);

  /// Blocking conveniences for demos and tests (never call from the loop
  /// thread or a transport callback).
  Result<VersionedValue> ReadSync(const Key& key);
  CommitOutcome CommitSync(std::vector<ReadEntry> reads,
                           std::vector<WriteEntry> writes);

  /// Installs initial data; call before Start (same order on every peer).
  void LoadInitial(const Key& key, const Value& value);

  /// Snapshot of the node's counters (synchronized through the loop).
  core::NodeCounters CountersSnapshot();

  DcId id() const { return id_; }
  RealtimeLoop& loop() { return loop_; }

 private:
  void OnWirePayload(std::vector<uint8_t> payload);

  const DcId id_;
  core::HeliosConfig config_;
  Duration inbound_delay_;
  RealtimeLoop loop_;
  std::unique_ptr<sim::Clock> clock_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<core::HeliosNode> node_;
  std::unique_ptr<wal::WalWriter> wal_;
  /// Reusable outbound framing buffers; only touched on the loop thread.
  wire::Framer framer_;
  bool started_ = false;
};

}  // namespace helios::transport

#endif  // HELIOS_TRANSPORT_LIVE_DATACENTER_H_
