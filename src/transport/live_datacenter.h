// A live (non-simulated) Helios datacenter: the HeliosNode engine on a
// real-time event loop, exchanging wire-serialized envelopes with peers
// over TCP. This is the deployment shape a real multi-datacenter install
// would use — one process per datacenter (tools/heliosd.cc) — demonstrated
// over localhost by examples/live_demo.cpp and tests/transport_test.cc.
//
// An optional inbound delay emulates WAN latency when every "datacenter"
// actually lives on one machine.
//
// Live-mode hardening on top of the bare engine:
//  * Durability: EnableWal(path, FileWalOptions) journals through a
//    wal::FileWal (configurable fsync policy) and recovers crash-
//    consistently on restart — torn tails are truncated, and after
//    Start() the node pulls the log suffix it missed from peers
//    (anti-entropy catch-up) before serving commits.
//  * Overload protection: SetAdmissionControl bounds the in-flight
//    transaction budget and the event-loop backlog; commits beyond the
//    budget are rejected immediately with the BUSY outcome instead of
//    queueing without bound, so admitted transactions keep a bounded
//    latency and clients back off (workload::kBusyAbortReason).

#ifndef HELIOS_TRANSPORT_LIVE_DATACENTER_H_
#define HELIOS_TRANSPORT_LIVE_DATACENTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/protocol.h"
#include "core/helios_config.h"
#include "core/helios_node.h"
#include "sim/clock.h"
#include "transport/realtime_loop.h"
#include "transport/tcp_transport.h"
#include "wal/file_wal.h"
#include "wal/wal.h"
#include "wire/serialization.h"

namespace helios::transport {

/// Admission-control thresholds; zero disables that check. See
/// LiveDatacenter::SetAdmissionControl.
struct AdmissionConfig {
  /// Maximum commit requests admitted but not yet decided.
  uint64_t max_inflight = 0;
  /// Maximum event-loop backlog (RealtimeLoop::queue_depth) at admission.
  uint64_t queue_watermark = 0;

  bool enabled() const { return max_inflight > 0 || queue_watermark > 0; }
};

/// Failure-detector snapshot (exported as health.* metrics by heliosd).
/// Vectors are indexed by peer DC id; the entry for this node itself is
/// 0 / false. Empty (enabled = false) when the cluster runs without the
/// health subsystem.
struct HealthSnapshot {
  bool enabled = false;
  std::vector<double> phi;        ///< Accrual suspicion level per peer.
  std::vector<bool> suspected;    ///< Currently past the phi threshold.
};

/// Overload counters (exported as overload.* metrics by heliosd).
struct OverloadStats {
  uint64_t admitted = 0;  ///< Commit requests accepted into the node.
  uint64_t shed = 0;      ///< Commit requests rejected with BUSY.
  uint64_t inflight = 0;  ///< Currently admitted, undecided.
  uint64_t queue_depth = 0;  ///< Loop backlog at snapshot time.
};

class LiveDatacenter {
 public:
  /// `config.num_datacenters` covers the whole deployment; `id` is this
  /// process's index. `inbound_delay` is added to every received envelope
  /// (half of the emulated RTT when running all peers on localhost).
  LiveDatacenter(DcId id, core::HeliosConfig config,
                 Duration inbound_delay = 0,
                 core::LogProtocolKind kind = core::LogProtocolKind::kHelios);
  ~LiveDatacenter();
  LiveDatacenter(const LiveDatacenter&) = delete;
  LiveDatacenter& operator=(const LiveDatacenter&) = delete;

  /// Enables write-ahead logging at `path` with the given durability
  /// policy and, if the file already has contents, recovers the node's
  /// state from it (truncating a torn tail). Call before Start; after
  /// Start() a recovered node additionally catches up from its peers.
  Status EnableWal(const std::string& path, const wal::FileWalOptions& opts);

  /// Back-compat convenience: fsync_each_record maps onto
  /// SyncPolicy::{kEveryRecord,kOsBuffered}.
  Status EnableWal(const std::string& path, bool fsync_each_record = false) {
    wal::FileWalOptions opts;
    opts.policy = fsync_each_record ? wal::SyncPolicy::kEveryRecord
                                    : wal::SyncPolicy::kOsBuffered;
    return EnableWal(path, opts);
  }

  /// Arms overload protection for Commit(). With a full in-flight budget
  /// or a loop backlog past the watermark, Commit rejects synchronously
  /// with outcome.abort_reason == "busy" instead of queueing. Call before
  /// Start.
  void SetAdmissionControl(const AdmissionConfig& admission) {
    admission_ = admission;
  }

  /// Binds the listening socket (0 = ephemeral). Call before Start.
  Status Listen(uint16_t port = 0);
  uint16_t port() const { return transport_->port(); }

  /// Dials every peer; `ports[dc]` is peer dc's port (own entry ignored).
  Status ConnectPeers(const std::vector<uint16_t>& ports);

  /// Starts the event loop and the node's periodic work. If EnableWal
  /// recovered state, also begins anti-entropy catch-up from peers.
  void Start();
  void Stop();

  // --- Client API (callbacks run on the loop thread, except a BUSY
  // rejection, which runs synchronously on the caller's thread) -----------

  void Read(const Key& key, ReadCallback done);
  void Commit(std::vector<ReadEntry> reads, std::vector<WriteEntry> writes,
              CommitCallback done);

  /// Blocking conveniences for demos and tests (never call from the loop
  /// thread or a transport callback).
  Result<VersionedValue> ReadSync(const Key& key);
  CommitOutcome CommitSync(std::vector<ReadEntry> reads,
                           std::vector<WriteEntry> writes);

  /// Installs initial data; call before Start (same order on every peer).
  void LoadInitial(const Key& key, const Value& value);

  /// Snapshot of the node's counters (synchronized through the loop).
  core::NodeCounters CountersSnapshot();

  /// Deterministic dump of the latest version of every key, one
  /// "key\tvalue\tts\twriter" line per key sorted by key — the store
  /// fingerprint the supervisor diffs across datacenters for convergence.
  /// Synchronized through the loop.
  std::string DumpStore();

  /// Overload counters (thread-safe; queue_depth sampled at call time).
  OverloadStats overload_snapshot() const;

  /// Per-peer phi / suspicion state (synchronized through the loop).
  HealthSnapshot health_snapshot();

  /// Crash-recovery totals: what EnableWal replayed plus what catch-up
  /// pulled from peers (thread-safe).
  RecoveryStats recovery_snapshot() const;

  /// Partition control (chaos-in-production): administratively refuse the
  /// connection to `peer` / lift the refusal. Thread-safe.
  void BlockPeer(DcId peer, bool blocked) {
    transport_->SetPeerBlocked(peer, blocked);
  }

  /// Forces the WAL to disk (clean shutdown barrier). No-op without WAL.
  void SyncWal();

  DcId id() const { return id_; }
  RealtimeLoop& loop() { return loop_; }
  TcpTransport& transport() { return *transport_; }

 private:
  void OnWirePayload(std::vector<uint8_t> payload);

  const DcId id_;
  core::HeliosConfig config_;
  Duration inbound_delay_;
  RealtimeLoop loop_;
  std::unique_ptr<sim::Clock> clock_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<core::HeliosNode> node_;
  std::unique_ptr<wal::FileWal> wal_;
  /// Reusable outbound framing buffers; only touched on the loop thread.
  wire::Framer framer_;
  bool started_ = false;
  bool recovered_ = false;  ///< EnableWal replayed a non-empty journal.

  AdmissionConfig admission_;
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};

  mutable std::mutex recovery_mu_;
  RecoveryStats recovery_;
};

}  // namespace helios::transport

#endif  // HELIOS_TRANSPORT_LIVE_DATACENTER_H_
