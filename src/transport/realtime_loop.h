// A real-time driver for the event-scheduler world: the same
// sim::Scheduler that powers the deterministic simulation is pumped
// against the wall clock on a dedicated thread, so the protocol engines
// (HeliosNode and friends) run unmodified in live deployments — their
// timers fire at real times and external inputs (client calls, network
// receive threads) are injected thread-safely with Post().
//
// Scheduler time is microseconds since Start(); sim::Clock instances bound
// to the loop's scheduler therefore read real elapsed time (plus any
// configured offset), exactly as in simulation.

#ifndef HELIOS_TRANSPORT_REALTIME_LOOP_H_
#define HELIOS_TRANSPORT_REALTIME_LOOP_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "sim/scheduler.h"

namespace helios::transport {

class RealtimeLoop {
 public:
  RealtimeLoop() = default;
  ~RealtimeLoop() { Stop(); }
  RealtimeLoop(const RealtimeLoop&) = delete;
  RealtimeLoop& operator=(const RealtimeLoop&) = delete;

  /// The scheduler protocol components should be constructed against.
  /// Only touch it from Post() callbacks (or before Start()).
  sim::Scheduler& scheduler() { return scheduler_; }

  /// Starts the loop thread. Events already scheduled run when the wall
  /// clock reaches their timestamps.
  void Start();

  /// Requests shutdown and joins the thread. Pending events are dropped.
  void Stop();

  /// Enqueues `fn` to run on the loop thread as soon as possible.
  /// Thread-safe; callable before Start() and from any thread after.
  void Post(std::function<void()> fn);

  /// Runs `fn` on the loop thread and waits for it to finish (convenience
  /// for tests and synchronous setup). Must not be called from the loop
  /// thread itself.
  void PostAndWait(std::function<void()> fn);

  bool running() const { return running_; }

  /// Number of posted-but-not-yet-drained callbacks: the backlog the loop
  /// thread has not absorbed. The admission controller uses this as its
  /// overload watermark — a growing queue means the loop can no longer
  /// keep up with arrivals. Thread-safe.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return posted_.size();
  }

 private:
  void Run();
  /// Wall-clock microseconds since Start().
  Duration Elapsed() const;

  sim::Scheduler scheduler_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> posted_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace helios::transport

#endif  // HELIOS_TRANSPORT_REALTIME_LOOP_H_
