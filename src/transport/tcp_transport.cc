#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace helios::transport {

namespace {

bool ReadFully(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

bool WriteFully(int fd, const uint8_t* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(MessageHandler handler)
    : handler_(std::move(handler)) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Listen(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind() failed: ") +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    return Status::Internal("listen() failed");
  }
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::Ok();
}

void TcpTransport::AcceptLoop() {
  while (!shutdown_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (shutdown_.load()) return;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SpawnReader(fd);
  }
}

void TcpTransport::SpawnReader(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  inbound_fds_.push_back(fd);
  readers_.emplace_back([this, fd]() { ReadLoop(fd); });
}

void TcpTransport::ReadLoop(int fd) {
  for (;;) {
    uint8_t header[4];
    if (!ReadFully(fd, header, 4)) break;
    const uint32_t len = static_cast<uint32_t>(header[0]) |
                         static_cast<uint32_t>(header[1]) << 8 |
                         static_cast<uint32_t>(header[2]) << 16 |
                         static_cast<uint32_t>(header[3]) << 24;
    if (len > (64u << 20)) break;  // 64 MiB sanity cap.
    std::vector<uint8_t> payload(len);
    if (len > 0 && !ReadFully(fd, payload.data(), len)) break;
    ++messages_received_;
    if (handler_) handler_(std::move(payload));
  }
  ::close(fd);
}

int TcpTransport::DialPeer(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status TcpTransport::Connect(DcId to, uint16_t port) {
  // Retry briefly: peers may still be binding.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = DialPeer(port);
    if (fd >= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      peers_.push_back(Peer{to, fd, port});
      return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Unavailable("could not connect to peer " +
                             std::to_string(to));
}

Status TcpTransport::SendOnce(DcId to, const uint8_t* data, size_t len) {
  uint8_t header[4] = {
      static_cast<uint8_t>(len & 0xFF),
      static_cast<uint8_t>((len >> 8) & 0xFF),
      static_cast<uint8_t>((len >> 16) & 0xFF),
      static_cast<uint8_t>((len >> 24) & 0xFF),
  };
  std::lock_guard<std::mutex> lock(mu_);  // One writer at a time per fd.
  Peer* peer = nullptr;
  for (Peer& p : peers_) {
    if (p.id == to) {
      peer = &p;
      break;
    }
  }
  if (peer == nullptr) {
    return Status::FailedPrecondition("no connection to peer");
  }
  if (peer->fd < 0) return Status::Unavailable("peer disconnected");
  if (!WriteFully(peer->fd, header, 4) ||
      !WriteFully(peer->fd, data, len)) {
    // The connection is dead (peer restarted or reset the socket): close
    // it so Send() redials on a fresh fd instead of writing into a pipe
    // that will never drain.
    ::close(peer->fd);
    peer->fd = -1;
    return Status::Unavailable("send failed");
  }
  ++messages_sent_;
  return Status::Ok();
}

Status TcpTransport::Send(DcId to, const uint8_t* data, size_t len) {
  Status s = SendOnce(to, data, len);
  if (s.ok() || s.code() == StatusCode::kFailedPrecondition) return s;

  // The connection died. Redial with bounded exponential backoff and
  // retry; the backoff sleeps happen outside mu_ so other peers' sends
  // keep flowing while this link recovers.
  int backoff_ms = 10;
  for (int attempt = 0; attempt < 5 && !shutdown_.load(); ++attempt) {
    uint16_t port = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Peer& p : peers_) {
        if (p.id == to) port = p.port;
      }
    }
    if (port == 0) break;
    const int fd = DialPeer(port);
    if (fd >= 0) {
      bool installed = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (Peer& p : peers_) {
          if (p.id == to && p.fd < 0) {
            p.fd = fd;
            installed = true;
            break;
          }
        }
      }
      if (!installed) ::close(fd);  // Another sender already reconnected.
      ++reconnects_;
      s = SendOnce(to, data, len);
      if (s.ok()) return s;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms *= 2;  // 10, 20, 40, 80, 160 ms.
  }
  return Status::Unavailable("send failed; reconnect attempts exhausted");
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Peer& p : peers_) {
      if (p.fd < 0) continue;
      ::shutdown(p.fd, SHUT_RDWR);
      ::close(p.fd);
    }
    peers_.clear();
    // Unblock reader threads parked in recv() on accepted connections.
    for (int fd : inbound_fds_) ::shutdown(fd, SHUT_RDWR);
    inbound_fds_.clear();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    readers.swap(readers_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace helios::transport
