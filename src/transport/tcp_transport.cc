#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "transport/io_util.h"

namespace helios::transport {

TcpTransport::TcpTransport(MessageHandler handler)
    : handler_(std::move(handler)) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Listen(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind() failed: ") +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    return Status::Internal("listen() failed");
  }
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::Ok();
}

void TcpTransport::AcceptLoop() {
  while (!shutdown_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (shutdown_.load()) return;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SpawnReader(fd);
  }
}

void TcpTransport::SpawnReader(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  inbound_fds_.push_back(fd);
  readers_.emplace_back([this, fd]() { ReadLoop(fd); });
}

void TcpTransport::ReadLoop(int fd) {
  for (;;) {
    uint8_t header[4];
    if (!ReadFull(fd, header, 4)) break;
    const uint32_t len = static_cast<uint32_t>(header[0]) |
                         static_cast<uint32_t>(header[1]) << 8 |
                         static_cast<uint32_t>(header[2]) << 16 |
                         static_cast<uint32_t>(header[3]) << 24;
    if (len > (64u << 20)) break;  // 64 MiB sanity cap.
    std::vector<uint8_t> payload(len);
    if (len > 0 && !ReadFull(fd, payload.data(), len)) break;
    ++messages_received_;
    if (handler_) handler_(std::move(payload));
  }
  ::close(fd);
}

int TcpTransport::DialPeer(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status TcpTransport::Connect(DcId to, uint16_t port) {
  {
    // A peer blocked before it was ever dialed (supervisor partition at
    // startup): remember the port, refuse the connection.
    std::lock_guard<std::mutex> lock(mu_);
    for (Peer& p : peers_) {
      if (p.id == to && p.blocked) {
        p.port = port;
        return Status::Ok();
      }
    }
  }
  // Retry briefly: peers may still be binding.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = DialPeer(port);
    if (fd >= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      for (Peer& p : peers_) {
        if (p.id != to) continue;
        if (p.fd >= 0) ::close(p.fd);
        p.fd = p.blocked ? -1 : fd;
        if (p.blocked) ::close(fd);
        p.port = port;
        return Status::Ok();
      }
      Peer p{};
      p.id = to;
      p.fd = fd;
      p.port = port;
      peers_.push_back(p);
      return Status::Ok();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Unavailable("could not connect to peer " +
                             std::to_string(to));
}

void TcpTransport::SetPeerBlocked(DcId to, bool blocked) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Peer& p : peers_) {
    if (p.id != to) continue;
    p.blocked = blocked;
    // Cut the live connection so in-flight kernel buffers drain to
    // nowhere; healing redials a fresh socket on the next send.
    if (blocked && p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
    return;
  }
  // No connection yet: remember the decision for a future Connect().
  Peer p{};
  p.id = to;
  p.fd = -1;
  p.port = 0;
  p.blocked = blocked;
  peers_.push_back(p);
}

Status TcpTransport::SendOnce(DcId to, const uint8_t* data, size_t len) {
  uint8_t header[4] = {
      static_cast<uint8_t>(len & 0xFF),
      static_cast<uint8_t>((len >> 8) & 0xFF),
      static_cast<uint8_t>((len >> 16) & 0xFF),
      static_cast<uint8_t>((len >> 24) & 0xFF),
  };
  std::lock_guard<std::mutex> lock(mu_);  // One writer at a time per fd.
  Peer* peer = nullptr;
  for (Peer& p : peers_) {
    if (p.id == to) {
      peer = &p;
      break;
    }
  }
  if (peer == nullptr) {
    return Status::FailedPrecondition("no connection to peer");
  }
  if (peer->blocked) {
    ++sends_blocked_;
    return Status::Unavailable("peer blocked");
  }
  if (peer->fd < 0) return Status::Unavailable("peer disconnected");
  if (!WriteFull(peer->fd, header, 4) || !WriteFull(peer->fd, data, len)) {
    // The connection is dead (peer restarted or reset the socket): close
    // it so Send() redials on a fresh fd instead of writing into a pipe
    // that will never drain.
    ::close(peer->fd);
    peer->fd = -1;
    return Status::Unavailable("send failed");
  }
  ++messages_sent_;
  return Status::Ok();
}

Status TcpTransport::Send(DcId to, const uint8_t* data, size_t len) {
  Status s = SendOnce(to, data, len);
  if (s.ok() || s.code() == StatusCode::kFailedPrecondition) return s;

  // The connection died (or never existed). Redial once — never sleep:
  // Send() runs on the datacenter's event-loop thread, and a peer that
  // stays down for seconds must cost a fast ECONNREFUSED per log tick,
  // not a blocking backoff that stalls every other timer and client.
  // A per-peer cooldown keeps a long outage from turning every tick into
  // a dial attempt.
  if (shutdown_.load()) return s;
  const auto now = std::chrono::steady_clock::now();
  uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Peer& p : peers_) {
      if (p.id != to) continue;
      if (p.blocked || p.port == 0) return s;
      if (p.fd >= 0) break;  // Another sender already reconnected.
      if (now < p.next_redial) return s;  // Still cooling down.
      p.next_redial = now + std::chrono::milliseconds(kRedialCooldownMs);
      port = p.port;
      break;
    }
  }
  if (port != 0) {
    const int fd = DialPeer(port);
    if (fd < 0) return Status::Unavailable("send failed; redial refused");
    bool installed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Peer& p : peers_) {
        if (p.id == to && p.fd < 0 && !p.blocked) {
          p.fd = fd;
          p.next_redial = {};  // Healthy again: no cooldown.
          installed = true;
          break;
        }
      }
    }
    if (!installed) {
      ::close(fd);  // Another sender already reconnected (or blocked).
    } else {
      ++reconnects_;
    }
  }
  return SendOnce(to, data, len);
}

int64_t TcpTransport::redial_cooldown_remaining_ms() const {
  const auto now = std::chrono::steady_clock::now();
  int64_t worst = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Peer& p : peers_) {
    if (p.fd >= 0 || p.blocked) continue;  // Connected / administratively cut.
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        p.next_redial - now);
    if (left.count() > worst) worst = left.count();
  }
  return worst;
}

void TcpTransport::Shutdown() {
  if (shutdown_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Peer& p : peers_) {
      if (p.fd < 0) continue;
      ::shutdown(p.fd, SHUT_RDWR);
      ::close(p.fd);
    }
    peers_.clear();
    // Unblock reader threads parked in recv() on accepted connections.
    for (int fd : inbound_fds_) ::shutdown(fd, SHUT_RDWR);
    inbound_fds_.clear();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    readers.swap(readers_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace helios::transport
