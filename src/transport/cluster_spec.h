// ClusterSpec: the JSON deployment description a live Helios cluster is
// launched from — the operator-facing counterpart of the in-process
// core::HeliosConfig.
//
// One document describes the whole deployment; every heliosd process
// (tools/heliosd.cc) loads the same file and picks out its own row by the
// --dc index, so the peers agree on ports, protocol timing, and
// durability policy by construction. The supervisor
// (tools/helios_supervisor.cc) loads it too, to know what to launch and
// where to reconnect after a kill.
//
// Schema (deterministic JSON, alphabetical keys; see docs/OPERATIONS.md):
//
//   {
//     "datacenters": [{"port": 7101, "wal": "/var/lib/helios/dc0.wal"}, ...],
//     "fault_tolerance": 0,
//     "fsync": "group",            // os | every | group (wal::SyncPolicy)
//     "grace_time_ms": 1000,
//     "group_commit_us": 5000,     // fsync batching window under "group"
//     "health_enabled": true,      // phi-accrual gray-failure detection
//     "inbound_delay_ms": 0,       // emulated one-way WAN latency
//     "log_interval_ms": 10,
//     "shards": 2                  // horizontal shards per datacenter
//   }
//
// `health_enabled` (omitted when false, the default) arms the phi-accrual
// failure detector and suspicion-driven degraded commit in every daemon;
// the resulting health.* gauges land in the heliosd metrics JSON.
//
// `shards` (omitted when 1, the default) declares S independent
// replication planes: shard k of every datacenter forms its own live
// Helios cluster (own log, own timetable, own WAL), mirroring the
// simulator's shard::ShardedCluster layout. One heliosd process serves
// one (dc, shard) cell, selected by --dc and --shard; its listen port is
// PortOf(dc, shard) = datacenters[dc].port + shard * num_datacenters()
// and its WAL is WalPathFor(dc, shard) (the per-DC path with ".s<k>"
// appended when sharded, so dc0.wal becomes dc0.wal.s0 / dc0.wal.s1).
// Validate() rejects derived-port collisions and overflow past 65535.
// Routing keys to shards and cross-shard commit are client concerns; the
// live layer provides the per-shard durability and replication planes
// (see docs/SHARDING.md).
//
// Unknown keys are an error (operator typos must not silently become
// defaults), and every tool validates before launching.

#ifndef HELIOS_TRANSPORT_CLUSTER_SPEC_H_
#define HELIOS_TRANSPORT_CLUSTER_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/helios_config.h"
#include "wal/file_wal.h"

namespace helios::transport {

/// One datacenter's row: where it listens and where it journals.
struct DatacenterSpec {
  uint16_t port = 0;
  std::string wal_path;  ///< Empty: run without a WAL (no durability).
};

struct ClusterSpec {
  std::vector<DatacenterSpec> datacenters;
  int fault_tolerance = 0;
  Duration grace_time = Millis(1000);
  Duration log_interval = Millis(10);
  Duration inbound_delay = 0;
  wal::FileWalOptions wal_options;
  /// Arms the health subsystem (failure detection + degraded commit).
  bool health_enabled = false;
  /// Independent replication planes per datacenter (see file comment).
  int shards = 1;

  int num_datacenters() const {
    return static_cast<int>(datacenters.size());
  }

  /// Ports indexed by DC id (the shape LiveDatacenter::ConnectPeers wants).
  /// `shard` selects the plane: every plane gets its own disjoint port set.
  std::vector<uint16_t> ports(int shard = 0) const;

  /// Listen port of shard `shard` at datacenter `dc`:
  /// datacenters[dc].port + shard * num_datacenters().
  uint16_t PortOf(int dc, int shard) const;

  /// WAL path of shard `shard` at datacenter `dc`. Identity when the spec
  /// is unsharded (old files keep their exact paths); with shards > 1 the
  /// per-DC path gains a ".s<k>" suffix. Empty stays empty (no WAL).
  std::string WalPathFor(int dc, int shard) const;

  /// The protocol config every heliosd derives from this spec. Commit
  /// offsets stay empty (Helios-B): a live deployment replans them online
  /// from RTT estimates rather than baking guesses into the file.
  core::HeliosConfig MakeConfig() const;

  /// At least one datacenter, every derived (dc, shard) port nonzero,
  /// unique, and <= 65535; shards >= 1; timing strictly positive, delay
  /// non-negative.
  Status Validate() const;

  /// Deterministic JSON (stable alphabetical keys).
  std::string ToJson() const;

  /// Parses ToJson() output or hand-written specs; unknown keys are an
  /// error. Run Validate() before using.
  static Result<ClusterSpec> FromJson(const std::string& text);
};

}  // namespace helios::transport

#endif  // HELIOS_TRANSPORT_CLUSTER_SPEC_H_
