// Phi-accrual failure detection (Hayashibara et al., SRDS'04) for gray
// failures: a slow-but-alive datacenter does not fail-stop, it just stops
// producing timely knowledge, silently inflating every peer's conclusive
// commit wait. The detector turns "how long since the last arrival" into a
// continuous suspicion level
//
//   phi(t) = -log10( P(an arrival takes longer than t - last_arrival) )
//
// over a sliding window of observed inter-arrival times, so the suspicion
// threshold adapts to each link's real heartbeat cadence and jitter instead
// of a fixed timeout. Helios feeds it from envelope arrivals (every gossip
// tick is a heartbeat); phi crossing the threshold drives the
// suspicion-refusal and degraded-commit machinery in core::HeliosNode.
//
// Everything here is a pure function of the arrival sequence and the query
// time: no clocks are read, no randomness, no scheduling — which keeps the
// simulator's bit-identity discipline intact and makes the math unit-
// testable with seeded arrival sequences (tests/health_test.cc).

#ifndef HELIOS_HEALTH_PHI_DETECTOR_H_
#define HELIOS_HEALTH_PHI_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace helios::health {

/// Tuning knobs. The defaults suit the simulator's 10 ms gossip tick: with
/// regular arrivals phi crosses 8 after roughly a dozen missed ticks, and
/// jittered-but-regular heartbeats stay far below threshold.
struct PhiOptions {
  /// Suspicion threshold: phi = 8 means "the chance this silence is normal
  /// is 10^-8". Larger = slower but more certain.
  double threshold = 8.0;
  /// Sliding window of inter-arrival samples the distribution is fit to.
  int window = 32;
  /// Variance floor so a perfectly regular heartbeat (stddev 0) does not
  /// make the detector hair-triggered on the first late tick.
  Duration min_stddev = Millis(2);
  /// Relative variance floor: stddev is never taken below this fraction of
  /// the fitted mean, so slow-cadence links tolerate proportionally more
  /// silence than fast ones even when their observed jitter is zero.
  double min_stddev_fraction = 0.2;
  /// Assumed mean inter-arrival before `min_samples` real samples exist.
  Duration bootstrap_interval = Millis(50);
  /// Arrivals needed before the fitted distribution replaces the bootstrap.
  int min_samples = 3;
};

/// Suspicion level for ONE peer. Feed Arrival() at every receipt; query
/// Phi() at any later instant. Times are any monotonic microsecond basis
/// (the simulator's scheduler time, CLOCK_MONOTONIC in live mode) — only
/// differences are used.
class PhiDetector {
 public:
  explicit PhiDetector(const PhiOptions& options = PhiOptions());

  /// Records a heartbeat/knowledge arrival at `now`. Arrivals must be fed
  /// in non-decreasing time order.
  void Arrival(int64_t now);

  /// Current suspicion level; 0 while nothing has arrived yet (a peer is
  /// innocent until it has ever spoken) or right after an arrival.
  /// Strictly non-decreasing between arrivals.
  double Phi(int64_t now) const;

  bool Suspected(int64_t now) const { return Phi(now) > options_.threshold; }

  int64_t last_arrival() const { return last_arrival_; }
  int samples() const { return static_cast<int>(intervals_.size()); }

  /// Fitted mean of the windowed inter-arrival distribution (bootstrap
  /// value until min_samples arrivals), for introspection and tests.
  double MeanInterval() const;
  double StddevInterval() const;

 private:
  PhiOptions options_;
  int64_t last_arrival_ = -1;
  /// Ring buffer of the last `window` inter-arrival durations.
  std::vector<int64_t> intervals_;
  size_t next_slot_ = 0;
  /// Running sums over the ring for O(1) mean/variance.
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// One node's view of every peer: a PhiDetector per datacenter plus the
/// suspected/readmitted edge tracking the reaction layer needs. `self` has
/// no detector (a node never suspects itself... through this class).
class PeerHealth {
 public:
  PeerHealth(int num_datacenters, DcId self,
             const PhiOptions& options = PhiOptions());

  void OnArrival(DcId peer, int64_t now);

  double Phi(DcId peer, int64_t now) const;
  bool Suspected(DcId peer, int64_t now) const;

  const PhiDetector& detector(DcId peer) const {
    return detectors_[static_cast<size_t>(peer)];
  }
  const PhiOptions& options() const { return options_; }
  int size() const { return static_cast<int>(detectors_.size()); }
  DcId self() const { return self_; }

 private:
  PhiOptions options_;
  DcId self_;
  std::vector<PhiDetector> detectors_;  // indexed by DcId; self unused.
};

}  // namespace helios::health

#endif  // HELIOS_HEALTH_PHI_DETECTOR_H_
