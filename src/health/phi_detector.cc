#include "health/phi_detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace helios::health {

PhiDetector::PhiDetector(const PhiOptions& options) : options_(options) {
  assert(options_.window > 0);
  intervals_.reserve(static_cast<size_t>(options_.window));
}

void PhiDetector::Arrival(int64_t now) {
  if (last_arrival_ < 0) {
    // First contact: starts the silence clock but yields no interval.
    last_arrival_ = now;
    return;
  }
  assert(now >= last_arrival_);
  const int64_t interval = now - last_arrival_;
  last_arrival_ = now;
  if (static_cast<int>(intervals_.size()) < options_.window) {
    intervals_.push_back(interval);
  } else {
    const int64_t evicted = intervals_[next_slot_];
    sum_ -= static_cast<double>(evicted);
    sum_sq_ -= static_cast<double>(evicted) * static_cast<double>(evicted);
    intervals_[next_slot_] = interval;
    next_slot_ = (next_slot_ + 1) % intervals_.size();
  }
  sum_ += static_cast<double>(interval);
  sum_sq_ += static_cast<double>(interval) * static_cast<double>(interval);
}

double PhiDetector::MeanInterval() const {
  if (static_cast<int>(intervals_.size()) < options_.min_samples) {
    return static_cast<double>(options_.bootstrap_interval);
  }
  return sum_ / static_cast<double>(intervals_.size());
}

double PhiDetector::StddevInterval() const {
  double var = 0.0;
  if (static_cast<int>(intervals_.size()) >= options_.min_samples) {
    const double n = static_cast<double>(intervals_.size());
    const double mean = sum_ / n;
    var = std::max(0.0, sum_sq_ / n - mean * mean);
  }
  const double floor = std::max(static_cast<double>(options_.min_stddev),
                                options_.min_stddev_fraction * MeanInterval());
  return std::max(std::sqrt(var), floor);
}

double PhiDetector::Phi(int64_t now) const {
  if (last_arrival_ < 0) return 0.0;
  const double elapsed = static_cast<double>(now - last_arrival_);
  if (elapsed <= 0.0) return 0.0;
  const double mean = MeanInterval();
  const double stddev = StddevInterval();
  // Akka/Cassandra's logistic approximation of the normal tail: monotone in
  // `elapsed`, accurate to a few percent over the range that matters, and
  // free of the catastrophic cancellation a naive 1 - CDF suffers once the
  // silence is many deviations past the mean.
  const double y = (elapsed - mean) / stddev;
  const double e = std::exp(-y * (1.5976 + 0.070566 * y * y));
  const double p_later =
      elapsed > mean ? e / (1.0 + e) : 1.0 - 1.0 / (1.0 + e);
  // Clamp away from zero so phi stays finite (and monotone) under
  // arbitrarily long silences.
  return -std::log10(std::max(p_later, 1e-300));
}

PeerHealth::PeerHealth(int num_datacenters, DcId self,
                       const PhiOptions& options)
    : options_(options), self_(self) {
  assert(num_datacenters > 0 && self >= 0 && self < num_datacenters);
  detectors_.assign(static_cast<size_t>(num_datacenters),
                    PhiDetector(options));
}

void PeerHealth::OnArrival(DcId peer, int64_t now) {
  if (peer == self_ || peer < 0 || peer >= size()) return;
  detectors_[static_cast<size_t>(peer)].Arrival(now);
}

double PeerHealth::Phi(DcId peer, int64_t now) const {
  if (peer == self_ || peer < 0 || peer >= size()) return 0.0;
  return detectors_[static_cast<size_t>(peer)].Phi(now);
}

bool PeerHealth::Suspected(DcId peer, int64_t now) const {
  return Phi(peer, now) > options_.threshold;
}

}  // namespace helios::health
