// Wire serialization of the messages Helios datacenters exchange: the
// transaction payloads, log records, the timetable, and the full envelope
// (partial log + refusals), with a CRC-framed container.
//
// The simulator moves messages as in-process objects, but a production
// deployment ships them over WAN sockets; this module is that boundary. It
// also powers the bandwidth accounting in the network model (message
// transmission time = encoded size / link bandwidth) and the
// message-size statistics in the ablation benches.
//
// Wire format: all integers are varints (timestamps zigzagged), strings
// length-prefixed. A framed message is
//   magic(4) | version(1) | payload_len(varint) | payload | crc32(4)
// where the CRC covers the payload only.
//
// Encoding API: every Encode* takes a wire::Writer, which appends into a
// caller-owned reusable Buffer — a send loop that keeps its Buffer (or a
// Framer) across messages does zero steady-state allocation. The Encoder
// overloads and the vector-returning FrameEnvelope are the legacy
// allocate-per-call surface, kept for one-shot call sites, equivalence
// tests, and the "before" leg of bench_perf's wire benchmarks.

#ifndef HELIOS_WIRE_SERIALIZATION_H_
#define HELIOS_WIRE_SERIALIZATION_H_

#include <vector>

#include "common/status.h"
#include "core/envelope.h"
#include "rdict/record.h"
#include "rdict/replicated_log.h"
#include "rdict/timetable.h"
#include "txn/transaction.h"
#include "wire/buffer.h"
#include "wire/codec.h"

namespace helios::wire {

inline constexpr uint32_t kFrameMagic = 0x48454C4Fu;  // "HELO"
inline constexpr uint8_t kWireVersion = 1;

// --- Component encoders/decoders -------------------------------------------

void EncodeTxnId(const TxnId& id, Writer* w);
Status DecodeTxnId(Decoder* dec, TxnId* out);

void EncodeTxnBody(const TxnBody& body, Writer* w);
Status DecodeTxnBody(Decoder* dec, TxnBodyPtr* out);

void EncodeLogRecord(const rdict::LogRecord& rec, Writer* w);
Status DecodeLogRecord(Decoder* dec, rdict::LogRecord* out);

void EncodeTimetable(const rdict::Timetable& table, Writer* w);
Status DecodeTimetable(Decoder* dec, rdict::Timetable* out);

void EncodeLogMessage(const rdict::LogMessage& msg, Writer* w);
Status DecodeLogMessage(Decoder* dec, rdict::LogMessage* out);

void EncodeEnvelope(const core::Envelope& env, Writer* w);
Status DecodeEnvelope(Decoder* dec, core::Envelope* out);

// Legacy Encoder overloads (same bytes; Encoder wraps a Writer).
inline void EncodeTxnId(const TxnId& id, Encoder* enc) {
  EncodeTxnId(id, enc->writer());
}
inline void EncodeTxnBody(const TxnBody& body, Encoder* enc) {
  EncodeTxnBody(body, enc->writer());
}
inline void EncodeLogRecord(const rdict::LogRecord& rec, Encoder* enc) {
  EncodeLogRecord(rec, enc->writer());
}
inline void EncodeTimetable(const rdict::Timetable& table, Encoder* enc) {
  EncodeTimetable(table, enc->writer());
}
inline void EncodeLogMessage(const rdict::LogMessage& msg, Encoder* enc) {
  EncodeLogMessage(msg, enc->writer());
}
inline void EncodeEnvelope(const core::Envelope& env, Encoder* enc) {
  EncodeEnvelope(env, enc->writer());
}

// --- Framing ----------------------------------------------------------------

/// Encodes `env` framed + checksummed into `out` (appended after Clear;
/// `out` is cleared first). Reusing `out` across calls is the copy-free
/// path. `scratch` holds the unframed payload and is likewise reused.
void FrameEnvelopeInto(const core::Envelope& env, Buffer* scratch,
                       Buffer* out);

/// Reusable two-buffer framing scratch: the convenient form of
/// FrameEnvelopeInto for send loops.
class Framer {
 public:
  /// Returns the framed bytes for `env`; the reference is valid until the
  /// next Frame() call or the Framer dies.
  const Buffer& Frame(const core::Envelope& env) {
    FrameEnvelopeInto(env, &payload_, &frame_);
    return frame_;
  }

 private:
  Buffer payload_;
  Buffer frame_;
};

/// Legacy one-shot framing: serializes an envelope into a fresh framed,
/// checksummed byte string (allocates per call).
std::vector<uint8_t> FrameEnvelope(const core::Envelope& env);

/// Parses a framed envelope; verifies magic, version, and CRC.
Result<core::Envelope> UnframeEnvelope(const uint8_t* data, size_t len);
inline Result<core::Envelope> UnframeEnvelope(
    const std::vector<uint8_t>& bytes) {
  return UnframeEnvelope(bytes.data(), bytes.size());
}
inline Result<core::Envelope> UnframeEnvelope(const Buffer& buf) {
  return UnframeEnvelope(buf.data(), buf.size());
}

/// Encoded (unframed) size of an envelope in bytes — what a deployment
/// would put on the wire; used for bandwidth accounting. Encodes into a
/// thread-local scratch buffer, so it does not allocate in steady state.
size_t EncodedEnvelopeSize(const core::Envelope& env);

}  // namespace helios::wire

#endif  // HELIOS_WIRE_SERIALIZATION_H_
