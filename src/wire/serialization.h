// Wire serialization of the messages Helios datacenters exchange: the
// transaction payloads, log records, the timetable, and the full envelope
// (partial log + refusals), with a CRC-framed container.
//
// The simulator moves messages as in-process objects, but a production
// deployment ships them over WAN sockets; this module is that boundary. It
// also powers the bandwidth accounting in the network model (message
// transmission time = encoded size / link bandwidth) and the
// message-size statistics in the ablation benches.
//
// Wire format: all integers are varints (timestamps zigzagged), strings
// length-prefixed. A framed message is
//   magic(4) | version(1) | payload_len(varint) | payload | crc32(4)
// where the CRC covers the payload only.

#ifndef HELIOS_WIRE_SERIALIZATION_H_
#define HELIOS_WIRE_SERIALIZATION_H_

#include <vector>

#include "common/status.h"
#include "core/envelope.h"
#include "rdict/record.h"
#include "rdict/replicated_log.h"
#include "rdict/timetable.h"
#include "txn/transaction.h"
#include "wire/codec.h"

namespace helios::wire {

inline constexpr uint32_t kFrameMagic = 0x48454C4Fu;  // "HELO"
inline constexpr uint8_t kWireVersion = 1;

// --- Component encoders/decoders -------------------------------------------

void EncodeTxnId(const TxnId& id, Encoder* enc);
Status DecodeTxnId(Decoder* dec, TxnId* out);

void EncodeTxnBody(const TxnBody& body, Encoder* enc);
Status DecodeTxnBody(Decoder* dec, TxnBodyPtr* out);

void EncodeLogRecord(const rdict::LogRecord& rec, Encoder* enc);
Status DecodeLogRecord(Decoder* dec, rdict::LogRecord* out);

void EncodeTimetable(const rdict::Timetable& table, Encoder* enc);
Status DecodeTimetable(Decoder* dec, rdict::Timetable* out);

void EncodeLogMessage(const rdict::LogMessage& msg, Encoder* enc);
Status DecodeLogMessage(Decoder* dec, rdict::LogMessage* out);

void EncodeEnvelope(const core::Envelope& env, Encoder* enc);
Status DecodeEnvelope(Decoder* dec, core::Envelope* out);

// --- Framing ----------------------------------------------------------------

/// Serializes an envelope into a framed, checksummed byte string.
std::vector<uint8_t> FrameEnvelope(const core::Envelope& env);

/// Parses a framed envelope; verifies magic, version, and CRC.
Result<core::Envelope> UnframeEnvelope(const std::vector<uint8_t>& bytes);

/// Encoded (unframed) size of an envelope in bytes — what a deployment
/// would put on the wire; used for bandwidth accounting.
size_t EncodedEnvelopeSize(const core::Envelope& env);

}  // namespace helios::wire

#endif  // HELIOS_WIRE_SERIALIZATION_H_
