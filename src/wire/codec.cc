#include "wire/codec.h"

#include <cassert>
#include <cstring>

namespace helios::wire {

void Writer::PutFixed32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Writer::PutSignedVarint(int64_t v) {
  // ZigZag: small magnitudes (positive or negative) stay small.
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void Writer::PutString(const std::string& s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void Writer::PatchFixed32(size_t offset, uint32_t v) {
  assert(offset + 4 <= out_->size());
  uint8_t* p = out_->data() + offset;
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

Status Decoder::GetU8(uint8_t* out) {
  if (pos_ >= len_) return Status::InvalidArgument("decode past end");
  *out = data_[pos_++];
  return Status::Ok();
}

Status Decoder::GetFixed32(uint32_t* out) {
  if (len_ - pos_ < 4) return Status::InvalidArgument("decode past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  }
  *out = v;
  return Status::Ok();
}

Status Decoder::GetFixed64(uint64_t* out) {
  if (len_ - pos_ < 8) return Status::InvalidArgument("decode past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  }
  *out = v;
  return Status::Ok();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= len_) return Status::InvalidArgument("varint past end");
    if (shift >= 64) return Status::InvalidArgument("varint too long");
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status Decoder::GetSignedVarint(int64_t* out) {
  uint64_t raw = 0;
  Status s = GetVarint(&raw);
  if (!s.ok()) return s;
  *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return Status::Ok();
}

Status Decoder::GetString(std::string* out) {
  uint64_t size = 0;
  Status s = GetVarint(&size);
  if (!s.ok()) return s;
  if (size > len_ - pos_) {
    return Status::InvalidArgument("string length exceeds buffer");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return Status::Ok();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v = 0;
  Status s = GetU8(&v);
  if (!s.ok()) return s;
  if (v > 1) return Status::InvalidArgument("bool out of range");
  *out = v == 1;
  return Status::Ok();
}

namespace {

// Table-driven CRC-32 (reflected, polynomial 0xEDB88320).
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table.entries[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace helios::wire
