// Caller-owned reusable byte buffer for the copy-free encode path.
//
// Buffer is the storage half of the wire::Writer API: a growable byte
// sink whose Clear() keeps its capacity, so a long-lived Buffer reaches a
// high-water mark after a few messages and every encode after that is
// allocation-free. Encoder (wire/codec.h) remains the legacy owning
// interface; new hot-path code should hold a Buffer and encode into it
// with a Writer.

#ifndef HELIOS_WIRE_BUFFER_H_
#define HELIOS_WIRE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace helios::wire {

class Buffer {
 public:
  Buffer() = default;

  // Movable but not copyable: accidental copies are exactly the
  // allocation churn this class exists to eliminate. Use Assign() or
  // ToVector() when a copy is genuinely wanted.
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  size_t capacity() const { return bytes_.capacity(); }

  /// Drops the contents but keeps the allocation — the reuse primitive.
  void Clear() { bytes_.clear(); }

  void Reserve(size_t n) { bytes_.reserve(n); }

  void PushBack(uint8_t v) { bytes_.push_back(v); }

  void Append(const void* p, size_t n) {
    const uint8_t* src = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), src, src + n);
  }

  /// Appends `n` uninitialized bytes and returns a pointer to them, for
  /// encoders that patch a placeholder (e.g. a fixed-width length field)
  /// after the fact. The pointer is invalidated by any further growth.
  uint8_t* Extend(size_t n) {
    bytes_.resize(bytes_.size() + n);
    return bytes_.data() + bytes_.size() - n;
  }

  void Assign(const void* p, size_t n) {
    bytes_.assign(static_cast<const uint8_t*>(p),
                  static_cast<const uint8_t*>(p) + n);
  }

  /// Explicit copy out, for interop with legacy std::vector interfaces.
  std::vector<uint8_t> ToVector() const { return bytes_; }

  /// Moves the storage out (the buffer is left empty with no capacity).
  std::vector<uint8_t> ReleaseVector() { return std::move(bytes_); }

  const std::vector<uint8_t>& vec() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace helios::wire

#endif  // HELIOS_WIRE_BUFFER_H_
