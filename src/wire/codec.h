// Low-level wire codec: a growable byte sink and a bounds-checked byte
// source with varint/zigzag integer encodings, used by the message
// serialization in wire/serialization.h. All decode paths return Status
// instead of crashing on malformed input.

#ifndef HELIOS_WIRE_CODEC_H_
#define HELIOS_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace helios::wire {

/// Append-only byte sink.
class Encoder {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// LEB128 varint.
  void PutVarint(uint64_t v);
  /// ZigZag-encoded signed varint.
  void PutSignedVarint(int64_t v);
  /// Length-prefixed byte string.
  void PutString(const std::string& s);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutRaw(const void* data, size_t len);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Release() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked byte source over a borrowed buffer.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Decoder(const std::vector<uint8_t>& bytes)
      : Decoder(bytes.data(), bytes.size()) {}

  Status GetU8(uint8_t* out);
  Status GetFixed32(uint32_t* out);
  Status GetFixed64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetSignedVarint(int64_t* out);
  Status GetString(std::string* out);
  Status GetBool(bool* out);

  size_t remaining() const { return len_ - pos_; }
  bool exhausted() const { return pos_ >= len_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// CRC-32 (ISO-HDLC polynomial) over a byte span.
uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace helios::wire

#endif  // HELIOS_WIRE_CODEC_H_
