// Low-level wire codec: byte sinks and a bounds-checked byte source with
// varint/zigzag integer encodings, used by the message serialization in
// wire/serialization.h. All decode paths return Status instead of
// crashing on malformed input.
//
// Two write-side interfaces share one encoding implementation:
//  - Writer appends into a caller-owned wire::Buffer. Holding the Buffer
//    across messages and Clear()ing between them makes steady-state
//    encoding allocation-free; this is the hot-path API.
//  - Encoder is the legacy owning sink (allocates a fresh vector per
//    instance). Kept for one-shot call sites, equivalence tests, and as
//    the "before" leg of the wire benchmarks.

#ifndef HELIOS_WIRE_CODEC_H_
#define HELIOS_WIRE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "wire/buffer.h"

namespace helios::wire {

/// Appends encoded values to a borrowed Buffer. The Buffer must outlive
/// the Writer; several Writers may append to the same Buffer in sequence.
class Writer {
 public:
  explicit Writer(Buffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->PushBack(v); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  /// LEB128 varint.
  void PutVarint(uint64_t v);
  /// ZigZag-encoded signed varint.
  void PutSignedVarint(int64_t v);
  /// Length-prefixed byte string.
  void PutString(const std::string& s);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutRaw(const void* data, size_t len) { out_->Append(data, len); }

  /// Byte offset of the next write — pair with PatchFixed32 to backfill a
  /// fixed-width placeholder (e.g. a length field) once it is known.
  size_t offset() const { return out_->size(); }
  void PatchFixed32(size_t offset, uint32_t v);

  Buffer* buffer() { return out_; }

 private:
  Buffer* out_;
};

/// Append-only byte sink that owns its storage (legacy API; see file
/// comment). Internally a Buffer + Writer, so both paths encode
/// identically by construction.
class Encoder {
 public:
  Encoder() : writer_(&buf_) {}

  void PutU8(uint8_t v) { writer_.PutU8(v); }
  void PutFixed32(uint32_t v) { writer_.PutFixed32(v); }
  void PutFixed64(uint64_t v) { writer_.PutFixed64(v); }
  void PutVarint(uint64_t v) { writer_.PutVarint(v); }
  void PutSignedVarint(int64_t v) { writer_.PutSignedVarint(v); }
  void PutString(const std::string& s) { writer_.PutString(s); }
  void PutBool(bool v) { writer_.PutBool(v); }
  void PutRaw(const void* data, size_t len) { writer_.PutRaw(data, len); }

  const std::vector<uint8_t>& bytes() const { return buf_.vec(); }
  std::vector<uint8_t> Release() { return buf_.ReleaseVector(); }
  size_t size() const { return buf_.size(); }

  Writer* writer() { return &writer_; }

 private:
  Buffer buf_;
  Writer writer_;
};

/// Bounds-checked byte source over a borrowed buffer.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Decoder(const std::vector<uint8_t>& bytes)
      : Decoder(bytes.data(), bytes.size()) {}
  explicit Decoder(const Buffer& buf) : Decoder(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out);
  Status GetFixed32(uint32_t* out);
  Status GetFixed64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetSignedVarint(int64_t* out);
  Status GetString(std::string* out);
  Status GetBool(bool* out);

  size_t remaining() const { return len_ - pos_; }
  bool exhausted() const { return pos_ >= len_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Read-side name paired with Writer. Decoding was already copy-free
/// (borrowed buffer), so the reader is the same class under both names.
using Reader = Decoder;

/// CRC-32 (ISO-HDLC polynomial) over a byte span.
uint32_t Crc32(const uint8_t* data, size_t len);
inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}
inline uint32_t Crc32(const Buffer& buf) {
  return Crc32(buf.data(), buf.size());
}

}  // namespace helios::wire

#endif  // HELIOS_WIRE_CODEC_H_
