#include "wire/serialization.h"

#include <memory>

namespace helios::wire {

namespace {

// Caps that keep malformed input from triggering giant allocations.
constexpr uint64_t kMaxSetSize = 1 << 20;
constexpr uint64_t kMaxRecords = 1 << 22;
constexpr uint64_t kMaxDatacenters = 1 << 10;

}  // namespace

void EncodeTxnId(const TxnId& id, Writer* w) {
  w->PutSignedVarint(id.origin);
  w->PutVarint(id.seq);
}

Status DecodeTxnId(Decoder* dec, TxnId* out) {
  int64_t origin = 0;
  uint64_t seq = 0;
  Status s = dec->GetSignedVarint(&origin);
  if (!s.ok()) return s;
  s = dec->GetVarint(&seq);
  if (!s.ok()) return s;
  out->origin = static_cast<DcId>(origin);
  out->seq = seq;
  return Status::Ok();
}

void EncodeTxnBody(const TxnBody& body, Writer* w) {
  EncodeTxnId(body.id, w);
  w->PutVarint(body.read_set.size());
  for (const ReadEntry& r : body.read_set) {
    w->PutString(r.key);
    w->PutSignedVarint(r.version_ts);
    EncodeTxnId(r.version_writer, w);
  }
  w->PutVarint(body.write_set.size());
  for (const WriteEntry& wr : body.write_set) {
    w->PutString(wr.key);
    w->PutString(wr.value);
  }
}

Status DecodeTxnBody(Decoder* dec, TxnBodyPtr* out) {
  TxnId id;
  Status s = DecodeTxnId(dec, &id);
  if (!s.ok()) return s;

  uint64_t reads = 0;
  s = dec->GetVarint(&reads);
  if (!s.ok()) return s;
  if (reads > kMaxSetSize) return Status::InvalidArgument("read set too big");
  std::vector<ReadEntry> read_set;
  read_set.reserve(reads);
  for (uint64_t i = 0; i < reads; ++i) {
    ReadEntry r;
    s = dec->GetString(&r.key);
    if (!s.ok()) return s;
    s = dec->GetSignedVarint(&r.version_ts);
    if (!s.ok()) return s;
    s = DecodeTxnId(dec, &r.version_writer);
    if (!s.ok()) return s;
    read_set.push_back(std::move(r));
  }

  uint64_t writes = 0;
  s = dec->GetVarint(&writes);
  if (!s.ok()) return s;
  if (writes > kMaxSetSize) return Status::InvalidArgument("write set too big");
  std::vector<WriteEntry> write_set;
  write_set.reserve(writes);
  for (uint64_t i = 0; i < writes; ++i) {
    WriteEntry wr;
    s = dec->GetString(&wr.key);
    if (!s.ok()) return s;
    s = dec->GetString(&wr.value);
    if (!s.ok()) return s;
    write_set.push_back(std::move(wr));
  }
  *out = std::make_shared<TxnBody>(
      TxnBody{id, std::move(read_set), std::move(write_set)});
  return Status::Ok();
}

void EncodeLogRecord(const rdict::LogRecord& rec, Writer* w) {
  w->PutU8(rec.type == rdict::RecordType::kPreparing ? 0 : 1);
  w->PutBool(rec.committed);
  w->PutSignedVarint(rec.ts);
  w->PutSignedVarint(rec.version_ts);
  w->PutSignedVarint(rec.origin);
  EncodeTxnBody(*rec.body, w);
}

Status DecodeLogRecord(Decoder* dec, rdict::LogRecord* out) {
  uint8_t type = 0;
  Status s = dec->GetU8(&type);
  if (!s.ok()) return s;
  if (type > 1) return Status::InvalidArgument("bad record type");
  out->type = type == 0 ? rdict::RecordType::kPreparing
                        : rdict::RecordType::kFinished;
  s = dec->GetBool(&out->committed);
  if (!s.ok()) return s;
  s = dec->GetSignedVarint(&out->ts);
  if (!s.ok()) return s;
  s = dec->GetSignedVarint(&out->version_ts);
  if (!s.ok()) return s;
  int64_t origin = 0;
  s = dec->GetSignedVarint(&origin);
  if (!s.ok()) return s;
  out->origin = static_cast<DcId>(origin);
  TxnBodyPtr body;
  s = DecodeTxnBody(dec, &body);
  if (!s.ok()) return s;
  out->body = std::move(body);
  return Status::Ok();
}

void EncodeTimetable(const rdict::Timetable& table, Writer* w) {
  const int n = table.size();
  w->PutVarint(static_cast<uint64_t>(n));
  for (DcId i = 0; i < n; ++i) {
    for (DcId j = 0; j < n; ++j) {
      w->PutSignedVarint(table.Get(i, j));
    }
  }
}

Status DecodeTimetable(Decoder* dec, rdict::Timetable* out) {
  uint64_t n = 0;
  Status s = dec->GetVarint(&n);
  if (!s.ok()) return s;
  if (n == 0 || n > kMaxDatacenters) {
    return Status::InvalidArgument("bad timetable size");
  }
  rdict::Timetable table(static_cast<int>(n));
  for (DcId i = 0; i < static_cast<int>(n); ++i) {
    for (DcId j = 0; j < static_cast<int>(n); ++j) {
      int64_t v = 0;
      s = dec->GetSignedVarint(&v);
      if (!s.ok()) return s;
      table.Set(i, j, v);
    }
  }
  *out = table;
  return Status::Ok();
}

void EncodeLogMessage(const rdict::LogMessage& msg, Writer* w) {
  w->PutSignedVarint(msg.from);
  EncodeTimetable(msg.table, w);
  w->PutVarint(msg.records.size());
  for (const rdict::LogRecord& rec : msg.records) {
    EncodeLogRecord(rec, w);
  }
}

Status DecodeLogMessage(Decoder* dec, rdict::LogMessage* out) {
  int64_t from = 0;
  Status s = dec->GetSignedVarint(&from);
  if (!s.ok()) return s;
  rdict::Timetable table(1);
  s = DecodeTimetable(dec, &table);
  if (!s.ok()) return s;
  uint64_t count = 0;
  s = dec->GetVarint(&count);
  if (!s.ok()) return s;
  if (count > kMaxRecords) return Status::InvalidArgument("too many records");
  rdict::LogMessage msg(table.size());
  msg.from = static_cast<DcId>(from);
  msg.table = table;
  msg.records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    rdict::LogRecord rec;
    s = DecodeLogRecord(dec, &rec);
    if (!s.ok()) return s;
    msg.records.push_back(std::move(rec));
  }
  *out = std::move(msg);
  return Status::Ok();
}

void EncodeEnvelope(const core::Envelope& env, Writer* w) {
  EncodeLogMessage(env.log, w);
  w->PutVarint(env.refusals.size());
  for (const core::Refusal& r : env.refusals) {
    w->PutSignedVarint(r.refuser);
    EncodeTxnId(r.txn, w);
    w->PutSignedVarint(r.txn_ts);
  }
  w->PutVarint(env.ping_id);
  w->PutVarint(env.pong_for);
  w->PutSignedVarint(env.pong_hold_us);
  w->PutVarint(env.rtt_row_us.size());
  for (Duration d : env.rtt_row_us) w->PutSignedVarint(d);
  // Trailing optionals: a kind byte only for non-gossip envelopes, then a
  // suspicion section only when suspicions are held. A healthy gossip
  // envelope carries neither, so its byte layout (and measured message
  // sizes) are unchanged; an envelope with suspicions spells out the kind
  // byte even for kGossip so the decoder can tell the sections apart.
  const bool has_suspicions = !env.suspicions.empty();
  if (env.kind != core::EnvelopeKind::kGossip || has_suspicions) {
    w->PutU8(static_cast<uint8_t>(env.kind));
  }
  if (has_suspicions) {
    w->PutVarint(env.suspicions.size());
    for (const core::Suspicion& s : env.suspicions) {
      w->PutSignedVarint(s.target);
      w->PutSignedVarint(s.since);
    }
  }
}

Status DecodeEnvelope(Decoder* dec, core::Envelope* out) {
  rdict::LogMessage msg(1);
  Status s = DecodeLogMessage(dec, &msg);
  if (!s.ok()) return s;
  core::Envelope env(msg.table.size());
  env.log = std::move(msg);
  uint64_t refusals = 0;
  s = dec->GetVarint(&refusals);
  if (!s.ok()) return s;
  if (refusals > kMaxSetSize) {
    return Status::InvalidArgument("too many refusals");
  }
  env.refusals.reserve(refusals);
  for (uint64_t i = 0; i < refusals; ++i) {
    core::Refusal r;
    int64_t refuser = 0;
    s = dec->GetSignedVarint(&refuser);
    if (!s.ok()) return s;
    r.refuser = static_cast<DcId>(refuser);
    s = DecodeTxnId(dec, &r.txn);
    if (!s.ok()) return s;
    s = dec->GetSignedVarint(&r.txn_ts);
    if (!s.ok()) return s;
    env.refusals.push_back(r);
  }
  uint64_t ping = 0;
  s = dec->GetVarint(&ping);
  if (!s.ok()) return s;
  env.ping_id = static_cast<uint32_t>(ping);
  uint64_t pong = 0;
  s = dec->GetVarint(&pong);
  if (!s.ok()) return s;
  env.pong_for = static_cast<uint32_t>(pong);
  s = dec->GetSignedVarint(&env.pong_hold_us);
  if (!s.ok()) return s;
  uint64_t row = 0;
  s = dec->GetVarint(&row);
  if (!s.ok()) return s;
  if (row > kMaxDatacenters) return Status::InvalidArgument("rtt row too big");
  env.rtt_row_us.resize(row);
  for (uint64_t i = 0; i < row; ++i) {
    s = dec->GetSignedVarint(&env.rtt_row_us[i]);
    if (!s.ok()) return s;
  }
  if (dec->remaining() > 0) {
    uint8_t kind = 0;
    s = dec->GetU8(&kind);
    if (!s.ok()) return s;
    // kind 0 (kGossip) is spelled out when a suspicion section follows.
    if (kind > static_cast<uint8_t>(core::EnvelopeKind::kCatchupResponse)) {
      return Status::InvalidArgument("bad envelope kind");
    }
    env.kind = static_cast<core::EnvelopeKind>(kind);
  }
  if (dec->remaining() > 0) {
    uint64_t suspicions = 0;
    s = dec->GetVarint(&suspicions);
    if (!s.ok()) return s;
    if (suspicions == 0 || suspicions > kMaxDatacenters) {
      return Status::InvalidArgument("bad suspicion count");
    }
    env.suspicions.reserve(suspicions);
    for (uint64_t i = 0; i < suspicions; ++i) {
      core::Suspicion susp;
      int64_t target = 0;
      s = dec->GetSignedVarint(&target);
      if (!s.ok()) return s;
      susp.target = static_cast<DcId>(target);
      s = dec->GetSignedVarint(&susp.since);
      if (!s.ok()) return s;
      env.suspicions.push_back(susp);
    }
  }
  *out = std::move(env);
  return Status::Ok();
}

void FrameEnvelopeInto(const core::Envelope& env, Buffer* scratch,
                       Buffer* out) {
  scratch->Clear();
  Writer payload(scratch);
  EncodeEnvelope(env, &payload);
  out->Clear();
  Writer frame(out);
  frame.PutFixed32(kFrameMagic);
  frame.PutU8(kWireVersion);
  frame.PutVarint(scratch->size());
  frame.PutRaw(scratch->data(), scratch->size());
  frame.PutFixed32(Crc32(*scratch));
}

std::vector<uint8_t> FrameEnvelope(const core::Envelope& env) {
  Buffer scratch;
  Buffer out;
  FrameEnvelopeInto(env, &scratch, &out);
  return out.ReleaseVector();
}

Result<core::Envelope> UnframeEnvelope(const uint8_t* data, size_t len) {
  Decoder dec(data, len);
  uint32_t magic = 0;
  Status s = dec.GetFixed32(&magic);
  if (!s.ok()) return s;
  if (magic != kFrameMagic) return Status::InvalidArgument("bad frame magic");
  uint8_t version = 0;
  s = dec.GetU8(&version);
  if (!s.ok()) return s;
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  uint64_t payload_len = 0;
  s = dec.GetVarint(&payload_len);
  if (!s.ok()) return s;
  if (payload_len > dec.remaining() ||
      dec.remaining() - payload_len != 4) {
    return Status::InvalidArgument("frame length mismatch");
  }
  const uint8_t* payload = data + dec.position();
  const uint32_t computed =
      Crc32(payload, static_cast<size_t>(payload_len));
  Decoder tail(payload + payload_len, 4);
  uint32_t stored = 0;
  s = tail.GetFixed32(&stored);
  if (!s.ok()) return s;
  if (stored != computed) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  Decoder payload_dec(payload, static_cast<size_t>(payload_len));
  core::Envelope env(1);
  s = DecodeEnvelope(&payload_dec, &env);
  if (!s.ok()) return s;
  if (!payload_dec.exhausted()) {
    return Status::InvalidArgument("trailing bytes in payload");
  }
  return env;
}

size_t EncodedEnvelopeSize(const core::Envelope& env) {
  // Bandwidth accounting runs once per simulated send; the thread-local
  // scratch keeps that from allocating a fresh vector every message.
  thread_local Buffer scratch;
  scratch.Clear();
  Writer w(&scratch);
  EncodeEnvelope(env, &w);
  return scratch.size();
}

}  // namespace helios::wire
