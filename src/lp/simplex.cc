#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace helios::lp {

namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau. Columns: structural vars, then surplus vars, then
// artificial vars, then the RHS. Rows: one per constraint, plus the
// objective row last.
class Tableau {
 public:
  Tableau(const LpProblem& p)
      : m_(static_cast<int>(p.constraints.size())),
        n_(p.num_vars),
        cols_(p.num_vars + 2 * static_cast<int>(p.constraints.size()) + 1),
        cells_(static_cast<size_t>(m_ + 1) * cols_, 0.0),
        basis_(m_) {
    // a.x >= b  ->  a.x - s = b; negate rows with negative rhs so that
    // b >= 0, then add artificial variables as the starting basis.
    for (int i = 0; i < m_; ++i) {
      const auto& con = p.constraints[i];
      double sign = con.rhs < 0.0 ? -1.0 : 1.0;
      for (int j = 0; j < n_; ++j) At(i, j) = sign * con.coeffs[j];
      At(i, SurplusCol(i)) = sign * -1.0;
      At(i, ArtificialCol(i)) = 1.0;
      Rhs(i) = sign * con.rhs;
      basis_[i] = ArtificialCol(i);
    }
  }

  int m() const { return m_; }
  int n() const { return n_; }
  int num_cols() const { return cols_ - 1; }
  int SurplusCol(int i) const { return n_ + i; }
  int ArtificialCol(int i) const { return n_ + m_ + i; }
  bool IsArtificial(int col) const { return col >= n_ + m_; }

  double& At(int row, int col) {
    return cells_[static_cast<size_t>(row) * cols_ + col];
  }
  double& Rhs(int row) { return At(row, cols_ - 1); }
  double& Obj(int col) { return At(m_, col); }
  double& ObjValue() { return At(m_, cols_ - 1); }
  int basis(int row) const { return basis_[row]; }

  // Loads the phase-1 objective (sum of artificials) into the objective
  // row, expressed in terms of the current basis.
  void LoadPhase1Objective() {
    for (int j = 0; j <= num_cols(); ++j) Obj(j) = 0.0;
    for (int i = 0; i < m_; ++i) Obj(ArtificialCol(i)) = 1.0;
    PriceOut();
  }

  // Loads the phase-2 objective (the problem's own), pricing out basics.
  void LoadPhase2Objective(const std::vector<double>& c) {
    for (int j = 0; j <= num_cols(); ++j) Obj(j) = 0.0;
    for (int j = 0; j < n_; ++j) Obj(j) = c[j];
    PriceOut();
  }

  // Subtracts multiples of constraint rows so basic columns have zero
  // reduced cost.
  void PriceOut() {
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[i];
      const double coef = Obj(b);
      if (std::fabs(coef) < kEps) continue;
      for (int j = 0; j <= num_cols(); ++j) At(m_, j) -= coef * At(i, j);
    }
  }

  // One simplex phase with Bland's rule over columns [0, max_col).
  // Returns kOk at optimality, kAborted if unbounded.
  Status Optimize(int max_col) {
    for (;;) {
      // Entering column: smallest index with negative reduced cost.
      int enter = -1;
      for (int j = 0; j < max_col; ++j) {
        if (Obj(j) < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return Status::Ok();

      // Leaving row: minimum ratio, ties by smallest basis index (Bland).
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double a = At(i, enter);
        if (a > kEps) {
          const double ratio = Rhs(i) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave < 0 || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave < 0) return Status::Aborted("LP is unbounded");
      Pivot(leave, enter);
    }
  }

  void Pivot(int row, int col) {
    const double pivot = At(row, col);
    assert(std::fabs(pivot) > kEps);
    for (int j = 0; j <= num_cols(); ++j) At(row, j) /= pivot;
    for (int i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const double factor = At(i, col);
      if (std::fabs(factor) < kEps) continue;
      for (int j = 0; j <= num_cols(); ++j) At(i, j) -= factor * At(row, j);
    }
    basis_[row] = col;
  }

  // After phase 1, pivots any artificial still in the basis out on a
  // non-artificial column (possible because its row value is ~0), or
  // detects a redundant row (all-zero) and leaves it: it is harmless.
  void EvictArtificials() {
    for (int i = 0; i < m_; ++i) {
      if (!IsArtificial(basis_[i])) continue;
      for (int j = 0; j < n_ + m_; ++j) {
        if (std::fabs(At(i, j)) > kEps) {
          Pivot(i, j);
          break;
        }
      }
    }
  }

  std::vector<double> Extract() const {
    std::vector<double> x(static_cast<size_t>(n_), 0.0);
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] < n_) {
        x[basis_[i]] =
            cells_[static_cast<size_t>(i) * cols_ + (cols_ - 1)];
      }
    }
    return x;
  }

 private:
  int m_;
  int n_;
  int cols_;
  std::vector<double> cells_;
  std::vector<int> basis_;
};

}  // namespace

void LpProblem::AddGe(std::vector<double> coeffs, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), rhs});
}

Result<LpSolution> SolveLp(const LpProblem& problem) {
  if (problem.num_vars <= 0 ||
      static_cast<int>(problem.objective.size()) != problem.num_vars) {
    return Status::InvalidArgument("objective size mismatch");
  }
  for (const auto& con : problem.constraints) {
    if (static_cast<int>(con.coeffs.size()) != problem.num_vars) {
      return Status::InvalidArgument("constraint size mismatch");
    }
  }
  if (problem.constraints.empty()) {
    // x = 0 is optimal for non-negative objectives; unbounded otherwise.
    for (double c : problem.objective) {
      if (c < -kEps) return Status::Aborted("LP is unbounded");
    }
    LpSolution sol;
    sol.x.assign(static_cast<size_t>(problem.num_vars), 0.0);
    return sol;
  }

  Tableau t(problem);

  // Phase 1: feasibility.
  t.LoadPhase1Objective();
  Status s = t.Optimize(t.num_cols());
  if (!s.ok()) return s;
  if (-t.ObjValue() > 1e-6) {
    return Status::FailedPrecondition("LP is infeasible");
  }
  t.EvictArtificials();

  // Phase 2: optimality over non-artificial columns only.
  t.LoadPhase2Objective(problem.objective);
  s = t.Optimize(t.n() + t.m());
  if (!s.ok()) return s;

  LpSolution sol;
  sol.x = t.Extract();
  sol.objective_value = 0.0;
  for (int j = 0; j < problem.num_vars; ++j) {
    sol.objective_value += problem.objective[j] * sol.x[j];
  }
  return sol;
}

}  // namespace helios::lp
