// Commit-latency planning: the Minimum Average Optimal (MAO) linear program
// of Section 3.3, the commit-offset assignment of Section 4.5, the analytic
// latency models behind Table 1, and the throughput-objective variant of
// Appendix A.2.
//
// All latencies in this module are in milliseconds (matching the paper's
// presentation); the Helios engine converts to microsecond Durations when
// it consumes the offsets.

#ifndef HELIOS_LP_MAO_H_
#define HELIOS_LP_MAO_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace helios::lp {

/// Symmetric matrix of mean round-trip times between datacenters.
class RttMatrix {
 public:
  explicit RttMatrix(int n);

  int size() const { return n_; }
  double Get(int a, int b) const;
  /// Sets both (a, b) and (b, a). a != b; rtt_ms >= 0.
  void Set(int a, int b, double rtt_ms);

  /// Returns a copy with every entry transformed by `f(a, b, rtt)` — used to
  /// inject the RTT-estimation errors of Figure 5.
  template <typename F>
  RttMatrix Map(F f) const {
    RttMatrix out(n_);
    for (int a = 0; a < n_; ++a) {
      for (int b = a + 1; b < n_; ++b) {
        out.Set(a, b, f(a, b, Get(a, b)));
      }
    }
    return out;
  }

 private:
  int n_;
  std::vector<double> rtt_;
};

/// Solves Problem 1: minimize (1/n) * sum L_i subject to
/// L_a + L_b >= RTT(a, b) for all pairs, L >= 0. Returns per-datacenter
/// commit latencies in milliseconds.
Result<std::vector<double>> SolveMao(const RttMatrix& rtt);

/// Problem 1 restricted to the datacenters other than `excluded` — the
/// gray-failure replanner: a suspected straggler stops constraining the
/// healthy quorum's latencies. The excluded datacenter still gets an entry
/// in the returned vector: the smallest latency keeping the FULL matrix
/// feasible (L_excluded = max_b RTT(excluded, b) - L_b), so offsets derived
/// from the result still satisfy Lemma 1 / Rule 1 for every pair, including
/// pairs involving the suspect. Requires n >= 2 and a valid index.
Result<std::vector<double>> SolveMaoExcluding(const RttMatrix& rtt,
                                              int excluded);

/// Average of a latency vector.
double AverageLatency(const std::vector<double>& latencies);

/// True if L_a + L_b >= RTT(a, b) - eps for every pair (Lemma 1).
bool SatisfiesLowerBound(const RttMatrix& rtt,
                         const std::vector<double>& latencies,
                         double eps = 1e-6);

/// Commit offsets from target latencies (Eq. 5):
///   co[a][b] = L_a - RTT(a, b) / 2        (diagonal entries are 0)
std::vector<std::vector<double>> CommitOffsetsFromLatencies(
    const RttMatrix& rtt, const std::vector<double>& latencies);

/// Estimated commit latency from offsets (Eq. 4):
///   L_a = max_b (co[a][b] + RTT(a, b) / 2)
std::vector<double> EstimateLatencies(
    const RttMatrix& rtt, const std::vector<std::vector<double>>& offsets);

/// Verifies Rule 1: co[a][b] + co[b][a] >= -eps for every pair.
Status ValidateOffsets(const std::vector<std::vector<double>>& offsets,
                       double eps = 1e-6);

// --- Analytic models for Table 1 -----------------------------------------

/// Master/slave replication: the master commits immediately; every other
/// datacenter's commit latency is its RTT to the master.
std::vector<double> MasterSlaveLatencies(const RttMatrix& rtt, int master);

/// Majority replication: each datacenter waits for acknowledgments from a
/// majority (itself plus the closest floor(n/2) peers), so its latency is
/// the RTT to its floor(n/2)-th closest peer.
std::vector<double> MajorityLatencies(const RttMatrix& rtt);

// --- Appendix A.2: throughput-optimal assignment --------------------------

/// Maximizes sum_i 1 / (L_i + overhead_ms) over the feasibility polytope.
/// The objective is convex, so the maximum sits at a vertex; this heuristic
/// tries, for each datacenter k, pinning L_k = 0 and greedily minimizing
/// the rest, plus the MAO point, and returns the best. `overhead_ms` is the
/// constant c of Appendix A.2 (transaction execution overhead) and must be
/// positive.
struct ThroughputPlan {
  std::vector<double> latencies;
  double rate_per_client = 0.0;  ///< sum_i 1000 / (L_i + c), txns/sec.
};
Result<ThroughputPlan> OptimizeThroughput(const RttMatrix& rtt,
                                          double overhead_ms);

/// The rate objective for a given assignment (txns/sec per client).
double ThroughputRate(const std::vector<double>& latencies,
                      double overhead_ms);

}  // namespace helios::lp

#endif  // HELIOS_LP_MAO_H_
