// Appendix A.1: the analytic model of Helios's *observable* commit latency
// under clock skew and RTT-estimation error.
//
// With commit offsets planned from estimated RTTs for target latencies L,
// the wait on peer B contributes
//
//     L_A + theta(A, B) + rho(A, B) / 2                     (Eq. 7)
//
// where theta(A, B) is A's clock offset minus B's (positive when A's clock
// runs ahead — A must wait longer for B's timestamps to catch up) and
// rho(A, B) is the amount by which the true RTT exceeds the estimate (the
// log physically takes rho/2 longer per direction than planned). The
// observable latency is the maximum over peers, floored at zero (a message
// can already have arrived before the commit request), plus the compute
// overheads C_local / C_remote of Eq. 8, which the caller supplies as a
// measured constant.

#ifndef HELIOS_LP_LATENCY_MODEL_H_
#define HELIOS_LP_LATENCY_MODEL_H_

#include <vector>

#include "lp/mao.h"

namespace helios::lp {

struct LatencyPrediction {
  /// Predicted per-datacenter observable commit latency, ms (before adding
  /// compute overhead).
  std::vector<double> latency_ms;
  /// For each datacenter, the peer whose log the commit ends up waiting on
  /// (the argmax of Eq. 7).
  std::vector<int> binding_peer;
};

/// Evaluates Eq. 7 for every datacenter.
///
/// `true_rtt`      — the RTTs the network actually delivers;
/// `estimated_rtt` — the RTTs used to plan commit offsets (Section 4.5);
/// `planned_latency_ms` — the target latencies L fed into Eq. 5
///                   (typically SolveMao(estimated_rtt));
/// `clock_offset_ms`  — per-datacenter clock offsets (empty = synchronized);
/// `overhead_ms`      — constant compute/link overhead added to every
///                   prediction (C_local + typical C_remote of Eq. 8).
LatencyPrediction PredictLatencies(const RttMatrix& true_rtt,
                                   const RttMatrix& estimated_rtt,
                                   const std::vector<double>& planned_latency_ms,
                                   const std::vector<double>& clock_offset_ms,
                                   double overhead_ms = 0.0);

/// Convenience: plans latencies with MAO on `estimated_rtt` first.
LatencyPrediction PredictLatenciesFromEstimate(
    const RttMatrix& true_rtt, const RttMatrix& estimated_rtt,
    const std::vector<double>& clock_offset_ms, double overhead_ms = 0.0);

}  // namespace helios::lp

#endif  // HELIOS_LP_LATENCY_MODEL_H_
