#include "lp/latency_model.h"

#include <algorithm>
#include <cassert>

namespace helios::lp {

LatencyPrediction PredictLatencies(const RttMatrix& true_rtt,
                                   const RttMatrix& estimated_rtt,
                                   const std::vector<double>& planned_latency_ms,
                                   const std::vector<double>& clock_offset_ms,
                                   double overhead_ms) {
  const int n = true_rtt.size();
  assert(estimated_rtt.size() == n);
  assert(static_cast<int>(planned_latency_ms.size()) == n);
  assert(clock_offset_ms.empty() ||
         static_cast<int>(clock_offset_ms.size()) == n);

  auto offset = [&](int dc) {
    return clock_offset_ms.empty() ? 0.0 : clock_offset_ms[dc];
  };

  LatencyPrediction out;
  out.latency_ms.resize(n);
  out.binding_peer.assign(n, -1);
  for (int a = 0; a < n; ++a) {
    double worst = 0.0;  // The wait can never be negative.
    for (int b = 0; b < n; ++b) {
      if (b == a) continue;
      const double theta = offset(a) - offset(b);
      const double rho = true_rtt.Get(a, b) - estimated_rtt.Get(a, b);
      const double wait = planned_latency_ms[a] + theta + rho / 2.0;  // Eq. 7
      if (wait > worst) {
        worst = wait;
        out.binding_peer[a] = b;
      }
    }
    out.latency_ms[a] = worst + overhead_ms;
  }
  return out;
}

LatencyPrediction PredictLatenciesFromEstimate(
    const RttMatrix& true_rtt, const RttMatrix& estimated_rtt,
    const std::vector<double>& clock_offset_ms, double overhead_ms) {
  auto mao = SolveMao(estimated_rtt);
  assert(mao.ok());
  return PredictLatencies(true_rtt, estimated_rtt, mao.value(),
                          clock_offset_ms, overhead_ms);
}

}  // namespace helios::lp
