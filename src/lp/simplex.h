// A small, dependency-free two-phase simplex solver.
//
// The paper derives the Minimum Average Optimal (MAO) commit latencies with
// a linear program (Problem 1, Section 3.3): minimize the average commit
// latency subject to L_A + L_B >= RTT(A, B) for every pair and L >= 0. This
// solver is general enough for that family of problems: minimize c^T x
// subject to A x >= b, x >= 0. Bland's rule guarantees termination.

#ifndef HELIOS_LP_SIMPLEX_H_
#define HELIOS_LP_SIMPLEX_H_

#include <vector>

#include "common/status.h"

namespace helios::lp {

/// minimize objective . x   subject to
///   constraints[i].coeffs . x >= constraints[i].rhs   for all i
///   x >= 0
struct LpProblem {
  struct Constraint {
    std::vector<double> coeffs;  ///< One coefficient per variable.
    double rhs = 0.0;
  };

  int num_vars = 0;
  std::vector<double> objective;  ///< One coefficient per variable.
  std::vector<Constraint> constraints;

  /// Appends a constraint; pads/truncates nothing — sizes must match.
  void AddGe(std::vector<double> coeffs, double rhs);
};

struct LpSolution {
  double objective_value = 0.0;
  std::vector<double> x;
};

/// Solves the LP. Returns:
///  - kInvalidArgument if shapes are inconsistent,
///  - kFailedPrecondition if infeasible,
///  - kAborted if unbounded,
///  - the optimal solution otherwise.
Result<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace helios::lp

#endif  // HELIOS_LP_SIMPLEX_H_
