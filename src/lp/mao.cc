#include "lp/mao.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lp/simplex.h"

namespace helios::lp {

RttMatrix::RttMatrix(int n) : n_(n), rtt_(static_cast<size_t>(n) * n, 0.0) {
  assert(n > 0);
}

double RttMatrix::Get(int a, int b) const {
  assert(a >= 0 && a < n_ && b >= 0 && b < n_);
  return rtt_[static_cast<size_t>(a) * n_ + b];
}

void RttMatrix::Set(int a, int b, double rtt_ms) {
  assert(a != b && rtt_ms >= 0.0);
  rtt_[static_cast<size_t>(a) * n_ + b] = rtt_ms;
  rtt_[static_cast<size_t>(b) * n_ + a] = rtt_ms;
}

Result<std::vector<double>> SolveMao(const RttMatrix& rtt) {
  const int n = rtt.size();
  LpProblem p;
  p.num_vars = n;
  p.objective.assign(static_cast<size_t>(n), 1.0 / n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::vector<double> coeffs(static_cast<size_t>(n), 0.0);
      coeffs[a] = 1.0;
      coeffs[b] = 1.0;
      p.AddGe(std::move(coeffs), rtt.Get(a, b));
    }
  }
  auto sol = SolveLp(p);
  if (!sol.ok()) return sol.status();
  return std::move(sol.value().x);
}

Result<std::vector<double>> SolveMaoExcluding(const RttMatrix& rtt,
                                              int excluded) {
  const int n = rtt.size();
  if (excluded < 0 || excluded >= n) {
    return Status::InvalidArgument("excluded datacenter out of range");
  }
  if (n < 2) {
    return Status::InvalidArgument("need at least two datacenters");
  }
  // Solve over the healthy submatrix.
  RttMatrix sub(n - 1);
  std::vector<int> to_full;  // sub index -> full index.
  to_full.reserve(static_cast<size_t>(n - 1));
  for (int a = 0; a < n; ++a) {
    if (a != excluded) to_full.push_back(a);
  }
  for (int a = 0; a < n - 1; ++a) {
    for (int b = a + 1; b < n - 1; ++b) {
      sub.Set(a, b, rtt.Get(to_full[static_cast<size_t>(a)],
                            to_full[static_cast<size_t>(b)]));
    }
  }
  auto mao = SolveMao(sub);
  if (!mao.ok()) return mao.status();
  // Expand, then give the suspect the least latency that keeps every
  // excluded-vs-healthy pair feasible.
  std::vector<double> full(static_cast<size_t>(n), 0.0);
  for (int a = 0; a < n - 1; ++a) {
    full[static_cast<size_t>(to_full[static_cast<size_t>(a)])] =
        mao.value()[static_cast<size_t>(a)];
  }
  double l_excluded = 0.0;
  for (int b = 0; b < n; ++b) {
    if (b == excluded) continue;
    l_excluded = std::max(
        l_excluded, rtt.Get(excluded, b) - full[static_cast<size_t>(b)]);
  }
  full[static_cast<size_t>(excluded)] = l_excluded;
  return full;
}

double AverageLatency(const std::vector<double>& latencies) {
  if (latencies.empty()) return 0.0;
  double sum = 0.0;
  for (double l : latencies) sum += l;
  return sum / static_cast<double>(latencies.size());
}

bool SatisfiesLowerBound(const RttMatrix& rtt,
                         const std::vector<double>& latencies, double eps) {
  const int n = rtt.size();
  if (static_cast<int>(latencies.size()) != n) return false;
  for (int a = 0; a < n; ++a) {
    if (latencies[a] < -eps) return false;
    for (int b = a + 1; b < n; ++b) {
      if (latencies[a] + latencies[b] < rtt.Get(a, b) - eps) return false;
    }
  }
  return true;
}

std::vector<std::vector<double>> CommitOffsetsFromLatencies(
    const RttMatrix& rtt, const std::vector<double>& latencies) {
  const int n = rtt.size();
  assert(static_cast<int>(latencies.size()) == n);
  std::vector<std::vector<double>> co(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      co[a][b] = latencies[a] - rtt.Get(a, b) / 2.0;
    }
  }
  return co;
}

std::vector<double> EstimateLatencies(
    const RttMatrix& rtt, const std::vector<std::vector<double>>& offsets) {
  const int n = rtt.size();
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  for (int a = 0; a < n; ++a) {
    double worst = 0.0;
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      worst = std::max(worst, offsets[a][b] + rtt.Get(a, b) / 2.0);
    }
    out[a] = worst;
  }
  return out;
}

Status ValidateOffsets(const std::vector<std::vector<double>>& offsets,
                       double eps) {
  const int n = static_cast<int>(offsets.size());
  for (int a = 0; a < n; ++a) {
    if (static_cast<int>(offsets[a].size()) != n) {
      return Status::InvalidArgument("offset matrix is not square");
    }
    for (int b = a + 1; b < n; ++b) {
      if (offsets[a][b] + offsets[b][a] < -eps) {
        return Status::FailedPrecondition(
            "Rule 1 violated: co[a][b] + co[b][a] < 0");
      }
    }
  }
  return Status::Ok();
}

std::vector<double> MasterSlaveLatencies(const RttMatrix& rtt, int master) {
  const int n = rtt.size();
  assert(master >= 0 && master < n);
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  for (int a = 0; a < n; ++a) {
    out[a] = a == master ? 0.0 : rtt.Get(a, master);
  }
  return out;
}

std::vector<double> MajorityLatencies(const RttMatrix& rtt) {
  const int n = rtt.size();
  const int peers_needed = n / 2;  // self + floor(n/2) peers = majority
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  for (int a = 0; a < n; ++a) {
    std::vector<double> peer_rtts;
    for (int b = 0; b < n; ++b) {
      if (b != a) peer_rtts.push_back(rtt.Get(a, b));
    }
    std::sort(peer_rtts.begin(), peer_rtts.end());
    out[a] = peers_needed == 0 ? 0.0 : peer_rtts[peers_needed - 1];
  }
  return out;
}

double ThroughputRate(const std::vector<double>& latencies,
                      double overhead_ms) {
  double rate = 0.0;
  for (double l : latencies) rate += 1000.0 / (l + overhead_ms);
  return rate;
}

namespace {

// Greedy minimal point: repeatedly lower each latency to the smallest value
// the pairwise constraints allow given the others, processing in the given
// order. Converges because each value only ever decreases and is bounded
// below.
std::vector<double> GreedyMinimize(const RttMatrix& rtt,
                                   std::vector<double> l,
                                   const std::vector<int>& order) {
  const int n = rtt.size();
  for (int pass = 0; pass < n + 2; ++pass) {
    for (int idx : order) {
      double lower = 0.0;
      for (int b = 0; b < n; ++b) {
        if (b == idx) continue;
        lower = std::max(lower, rtt.Get(idx, b) - l[b]);
      }
      l[idx] = lower;
    }
  }
  return l;
}

}  // namespace

Result<ThroughputPlan> OptimizeThroughput(const RttMatrix& rtt,
                                          double overhead_ms) {
  if (overhead_ms <= 0.0) {
    return Status::InvalidArgument(
        "overhead_ms must be positive (Appendix A.2: a zero execution "
        "overhead makes the objective unbounded in spirit)");
  }
  const int n = rtt.size();
  auto mao = SolveMao(rtt);
  if (!mao.ok()) return mao.status();

  ThroughputPlan best;
  best.latencies = mao.value();
  best.rate_per_client = ThroughputRate(best.latencies, overhead_ms);

  // Candidate vertices: pin datacenter k to 0 (its constraints force the
  // others up), then greedily minimize the rest in each rotation order.
  for (int k = 0; k < n; ++k) {
    std::vector<double> l(static_cast<size_t>(n), 0.0);
    for (int b = 0; b < n; ++b) {
      if (b != k) l[b] = rtt.Get(k, b);  // Forced by the pair (k, b).
    }
    std::vector<int> order;
    for (int i = 0; i < n; ++i) {
      if (i != k) order.push_back((k + 1 + i) % n);
    }
    // Raise to feasibility among the non-pinned pairs, then minimize.
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        const double need = rtt.Get(a, b) - (l[a] + l[b]);
        if (need > 0) l[b] += need;
      }
    }
    l = GreedyMinimize(rtt, std::move(l), order);
    if (!SatisfiesLowerBound(rtt, l)) continue;
    const double rate = ThroughputRate(l, overhead_ms);
    if (rate > best.rate_per_client) {
      best.latencies = std::move(l);
      best.rate_per_client = rate;
    }
  }
  return best;
}

}  // namespace helios::lp
