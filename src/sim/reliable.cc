#include "sim/reliable.h"

#include <algorithm>
#include <utility>

namespace helios::sim {

ReliableMesh::ReliableMesh(Scheduler* scheduler, Network* network,
                           ReliableConfig config)
    : scheduler_(scheduler),
      network_(network),
      config_(config),
      n_(network->size()),
      channels_(static_cast<size_t>(n_) * static_cast<size_t>(n_)) {}

Duration ReliableMesh::InitialRto(int from, int to) const {
  const double rtt = static_cast<double>(network_->MeanRtt(from, to));
  const auto rto = static_cast<Duration>(rtt * config_.rto_rtt_multiplier);
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

void ReliableMesh::Send(int from, int to, std::function<void()> deliver) {
  SendSized(from, to, 0, std::move(deliver));
}

void ReliableMesh::SendSized(int from, int to, size_t size_bytes,
                             std::function<void()> deliver) {
  if (!config_.enabled) {
    // Strict passthrough: no session state, no acks, no extra events.
    network_->SendSized(from, to, size_bytes, std::move(deliver));
    return;
  }
  Channel& ch = Chan(from, to);
  const uint64_t seq = ch.next_seq++;
  Packet p;
  p.deliver = std::move(deliver);
  p.size_bytes = size_bytes;
  p.attempts = 1;
  p.rto = InitialRto(from, to);
  p.last_tx = scheduler_->Now();
  const Duration rto = p.rto;
  ch.unacked.emplace(seq, std::move(p));
  TransmitData(from, to, seq, size_bytes);
  ArmTimer(from, to, seq, rto);
}

void ReliableMesh::TransmitData(int from, int to, uint64_t seq,
                                size_t size_bytes) {
  // The data packet "carries" the payload closure by reference: on arrival
  // the receiver fetches it from the sender's unacked map, which is safe
  // because the sender erases an entry only after a cumulative ack — and
  // acks are only generated after the first copy was accepted, at which
  // point every later copy is suppressed before the lookup.
  network_->SendSized(from, to, size_bytes,
                      [this, from, to, seq]() { OnData(from, to, seq); });
}

void ReliableMesh::ArmTimer(int from, int to, uint64_t seq, Duration rto) {
  scheduler_->After(rto, [this, from, to, seq]() {
    Channel& ch = Chan(from, to);
    auto it = ch.unacked.find(seq);
    if (it == ch.unacked.end()) return;  // Acked meanwhile.
    Packet& p = it->second;
    if (config_.max_attempts > 0 && p.attempts >= config_.max_attempts) {
      ++gave_up_;
      ch.unacked.erase(it);
      return;
    }
    ++p.attempts;
    ++retransmits_;
    if (trace_ != nullptr) {
      trace_->Span(obs::EventKind::kNetRetransmit, from, TxnId{}, p.last_tx,
                   scheduler_->Now(), to);
    }
    p.last_tx = scheduler_->Now();
    p.rto = std::min(
        static_cast<Duration>(static_cast<double>(p.rto) * config_.backoff),
        config_.max_rto);
    const Duration next_rto = p.rto;
    TransmitData(from, to, seq, p.size_bytes);
    ArmTimer(from, to, seq, next_rto);
  });
}

void ReliableMesh::OnData(int from, int to, uint64_t seq) {
  Channel& ch = Chan(from, to);
  if (seq <= ch.delivered_through || ch.buffer.count(seq) != 0) {
    // A retransmitted or network-duplicated copy of something already
    // accepted. Re-ack so the sender stops resending (the earlier ack may
    // itself have been lost).
    ++duplicates_suppressed_;
    SendAck(from, to);
    return;
  }
  auto it = ch.unacked.find(seq);
  // A copy can outlive its packet if max_attempts gave up while it was in
  // flight; the payload is gone, so the copy is just a late loss.
  if (it == ch.unacked.end()) return;
  // Copy, not move: the sender may still retransmit this payload until the
  // ack lands.
  ch.buffer[seq] = it->second.deliver;
  while (true) {
    auto next = ch.buffer.find(ch.delivered_through + 1);
    if (next == ch.buffer.end()) break;
    ++ch.delivered_through;
    auto deliver = std::move(next->second);
    ch.buffer.erase(next);
    deliver();
  }
  SendAck(from, to);
}

void ReliableMesh::SendAck(int from, int to) {
  Channel& ch = Chan(from, to);
  const uint64_t cumulative = ch.delivered_through;
  ++acks_sent_;
  // Acks ride the same faulty network, in the reverse direction; being
  // cumulative, a lost or reordered ack is subsumed by any later one.
  network_->Send(to, from, [this, from, to, cumulative]() {
    OnAck(from, to, cumulative);
  });
}

void ReliableMesh::OnAck(int from, int to, uint64_t cumulative) {
  Channel& ch = Chan(from, to);
  auto it = ch.unacked.begin();
  while (it != ch.unacked.end() && it->first <= cumulative) {
    it = ch.unacked.erase(it);
  }
}

}  // namespace helios::sim
