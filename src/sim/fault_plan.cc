#include "sim/fault_plan.h"

#include <utility>

namespace helios::sim {

namespace {

Status CheckProbability(const char* what, double p, size_t index) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(
        "link_faults[" + std::to_string(index) + "]." + what + " is " +
        std::to_string(p) + "; probabilities must be in [0, 1]");
  }
  return Status::Ok();
}

Status CheckNode(const char* where, int node, int n, bool allow_any) {
  if (allow_any && node == kAnyDc) return Status::Ok();
  if (node < 0 || node >= n) {
    // Name the dimension explicitly: fault-plan node indices run along
    // the datacenter axis, never the shard axis. In a sharded deployment
    // (src/shard) a crash/partition on datacenter d hits every one of its
    // shards together; there is no per-shard fault addressing.
    return Status::InvalidArgument(
        std::string(where) + " = " + std::to_string(node) +
        " is out of range on the datacenter axis: the deployment has " +
        std::to_string(n) + " datacenters (valid: 0.." +
        std::to_string(n - 1) + (allow_any ? ", or -1 for any)" : ")") +
        "; node indices address whole datacenters — in a sharded "
        "deployment every shard of that datacenter is hit together, "
        "shards are not individually addressable");
  }
  return Status::Ok();
}

}  // namespace

const char* GrayFaultKindName(GrayFaultKind kind) {
  switch (kind) {
    case GrayFaultKind::kSlowLink:
      return "slow_link";
    case GrayFaultKind::kAsymPartition:
      return "asym_partition";
    case GrayFaultKind::kProcessStall:
      return "process_stall";
    case GrayFaultKind::kFsyncStall:
      return "fsync_stall";
  }
  return "?";
}

namespace {

Status ValidateGrayFault(const GrayFault& g, int n, size_t index) {
  const std::string where = "gray_faults[" + std::to_string(index) + "]";
  if (g.active_from < 0 || g.active_until < g.active_from) {
    return Status::InvalidArgument(
        where + ": active window must satisfy 0 <= from <= until");
  }
  if (g.IsLinkKind()) {
    if (Status s = CheckNode((where + ".a").c_str(), g.a, n, true); !s.ok()) {
      return s;
    }
    if (Status s = CheckNode((where + ".b").c_str(), g.b, n, true); !s.ok()) {
      return s;
    }
    if (g.a != kAnyDc && g.a == g.b) {
      return Status::InvalidArgument(where + " targets the self-link " +
                                     std::to_string(g.a) + "->" +
                                     std::to_string(g.b) +
                                     "; links connect distinct datacenters");
    }
  } else {
    // Node kinds act on `a` alone; a wildcard node stall would freeze the
    // whole deployment, which is a different experiment entirely.
    if (Status s = CheckNode((where + ".a").c_str(), g.a, n, false); !s.ok()) {
      return s;
    }
    if (g.b != kAnyDc) {
      return Status::InvalidArgument(
          where + ": " + std::string(GrayFaultKindName(g.kind)) +
          " acts on one datacenter; leave b unset");
    }
    if (g.active_until == kMaxSimTime) {
      return Status::InvalidArgument(
          where + ": " + std::string(GrayFaultKindName(g.kind)) +
          " needs a bounded active window (the stall must end)");
    }
  }
  switch (g.kind) {
    case GrayFaultKind::kSlowLink:
      if (g.slow_factor < 1.0) {
        return Status::InvalidArgument(
            where + ".slow_factor is " + std::to_string(g.slow_factor) +
            "; a slowdown multiplies latency and must be >= 1");
      }
      if (g.extra_delay < 0) {
        return Status::InvalidArgument(where + ".extra_delay must be >= 0");
      }
      if (g.slow_factor == 1.0 && g.extra_delay == 0) {
        return Status::InvalidArgument(
            where + ": slow_link with slow_factor 1 and extra_delay 0 "
                    "has no effect");
      }
      break;
    case GrayFaultKind::kAsymPartition:
    case GrayFaultKind::kProcessStall:
      if (g.slow_factor != 1.0 || g.extra_delay != 0) {
        return Status::InvalidArgument(
            where + ": " + std::string(GrayFaultKindName(g.kind)) +
            " takes no slow_factor or extra_delay");
      }
      break;
    case GrayFaultKind::kFsyncStall:
      if (g.slow_factor != 1.0) {
        return Status::InvalidArgument(where +
                                       ": fsync_stall takes no slow_factor");
      }
      if (g.extra_delay <= 0) {
        return Status::InvalidArgument(
            where + ": fsync_stall needs extra_delay > 0 (the per-record "
                    "service-time penalty)");
      }
      break;
  }
  return Status::Ok();
}

}  // namespace

Status FaultPlan::Validate(int num_datacenters) const {
  const int n = num_datacenters;
  if (n <= 0) return Status::InvalidArgument("deployment size must be > 0");
  for (size_t i = 0; i < gray_faults.size(); ++i) {
    if (Status s = ValidateGrayFault(gray_faults[i], n, i); !s.ok()) return s;
  }
  for (size_t i = 0; i < link_faults.size(); ++i) {
    const LinkFault& f = link_faults[i];
    const std::string where = "link_faults[" + std::to_string(i) + "]";
    if (Status s = CheckNode((where + ".from").c_str(), f.from, n, true);
        !s.ok()) {
      return s;
    }
    if (Status s = CheckNode((where + ".to").c_str(), f.to, n, true); !s.ok()) {
      return s;
    }
    if (f.from != kAnyDc && f.from == f.to) {
      return Status::InvalidArgument(where + " targets the self-link " +
                                     std::to_string(f.from) + "->" +
                                     std::to_string(f.to) +
                                     "; links connect distinct datacenters");
    }
    if (Status s = CheckProbability("loss", f.loss, i); !s.ok()) return s;
    if (Status s = CheckProbability("duplicate", f.duplicate, i); !s.ok()) {
      return s;
    }
    if (Status s = CheckProbability("reorder", f.reorder, i); !s.ok()) return s;
    if (f.reorder_window < 0 || f.delay < 0) {
      return Status::InvalidArgument(
          where + ": reorder_window and delay must be >= 0");
    }
    if (f.reorder > 0.0 && f.reorder_window == 0) {
      return Status::InvalidArgument(
          where + ": reorder > 0 needs a positive reorder_window");
    }
    if (f.active_from < 0 || f.active_until < f.active_from) {
      return Status::InvalidArgument(
          where + ": active window must satisfy 0 <= from <= until");
    }
  }
  for (size_t i = 0; i < node_events.size(); ++i) {
    const NodeEvent& e = node_events[i];
    const std::string where = "node_events[" + std::to_string(i) + "]";
    if (Status s = CheckNode((where + ".node").c_str(), e.node, n, false);
        !s.ok()) {
      return s;
    }
    if (e.at < 0) return Status::InvalidArgument(where + ".at must be >= 0");
  }
  for (size_t i = 0; i < partition_events.size(); ++i) {
    const PartitionEvent& e = partition_events[i];
    const std::string where = "partition_events[" + std::to_string(i) + "]";
    if (Status s = CheckNode((where + ".a").c_str(), e.a, n, false); !s.ok()) {
      return s;
    }
    if (Status s = CheckNode((where + ".b").c_str(), e.b, n, false); !s.ok()) {
      return s;
    }
    if (e.a == e.b) {
      return Status::InvalidArgument(
          where + ": cannot partition datacenter " + std::to_string(e.a) +
          " from itself");
    }
    if (e.at < 0) return Status::InvalidArgument(where + ".at must be >= 0");
  }
  return Status::Ok();
}

// --- JSON -------------------------------------------------------------------

std::string FaultPlan::ToJson() const {
  std::string out;
  json::ObjectWriter w(&out);
  if (!gray_faults.empty()) {
    w.Key("gray_faults");
    out += '[';
    for (size_t i = 0; i < gray_faults.size(); ++i) {
      const GrayFault& g = gray_faults[i];
      if (i > 0) out += ',';
      json::ObjectWriter gf(&out);
      gf.Field("a", static_cast<int64_t>(g.a));
      gf.Field("active_from_us", static_cast<int64_t>(g.active_from));
      gf.Field("active_until_us", static_cast<int64_t>(g.active_until));
      gf.Field("b", static_cast<int64_t>(g.b));
      gf.Field("extra_delay_us", static_cast<int64_t>(g.extra_delay));
      gf.Field("kind", std::string(GrayFaultKindName(g.kind)));
      gf.Field("slow_factor", g.slow_factor);
      gf.Close();
    }
    out += ']';
  }
  if (!link_faults.empty()) {
    w.Key("link_faults");
    out += '[';
    for (size_t i = 0; i < link_faults.size(); ++i) {
      const LinkFault& f = link_faults[i];
      if (i > 0) out += ',';
      json::ObjectWriter lf(&out);
      lf.Field("active_from_us", static_cast<int64_t>(f.active_from));
      lf.Field("active_until_us", static_cast<int64_t>(f.active_until));
      lf.Field("delay_us", static_cast<int64_t>(f.delay));
      lf.Field("duplicate", f.duplicate);
      lf.Field("from", static_cast<int64_t>(f.from));
      lf.Field("loss", f.loss);
      lf.Field("reorder", f.reorder);
      lf.Field("reorder_window_us", static_cast<int64_t>(f.reorder_window));
      lf.Field("to", static_cast<int64_t>(f.to));
      lf.Close();
    }
    out += ']';
  }
  if (!node_events.empty()) {
    w.Key("node_events");
    out += '[';
    for (size_t i = 0; i < node_events.size(); ++i) {
      const NodeEvent& e = node_events[i];
      if (i > 0) out += ',';
      json::ObjectWriter ne(&out);
      ne.Field("at_us", static_cast<int64_t>(e.at));
      ne.Field("node", static_cast<int64_t>(e.node));
      ne.Field("up", e.up);
      ne.Close();
    }
    out += ']';
  }
  if (!partition_events.empty()) {
    w.Key("partition_events");
    out += '[';
    for (size_t i = 0; i < partition_events.size(); ++i) {
      const PartitionEvent& e = partition_events[i];
      if (i > 0) out += ',';
      json::ObjectWriter pe(&out);
      pe.Field("a", static_cast<int64_t>(e.a));
      pe.Field("at_us", static_cast<int64_t>(e.at));
      pe.Field("b", static_cast<int64_t>(e.b));
      pe.Field("partitioned", e.partitioned);
      pe.Close();
    }
    out += ']';
  }
  w.Close();
  return out;
}

namespace {

Result<GrayFault> ParseGrayFault(const json::Value& v, size_t index) {
  const std::string where = "gray_faults[" + std::to_string(index) + "]";
  if (v.kind != json::Value::Kind::kObject) {
    return json::WrongType(where, "an object");
  }
  GrayFault g;
  for (const auto& [key, item] : v.members) {
    Status st;
    if (key == "a") {
      st = json::ReadInt(where + "." + key, item, &g.a);
    } else if (key == "active_from_us") {
      st = json::ReadInt64(where + "." + key, item, &g.active_from);
    } else if (key == "active_until_us") {
      st = json::ReadInt64(where + "." + key, item, &g.active_until);
    } else if (key == "b") {
      st = json::ReadInt(where + "." + key, item, &g.b);
    } else if (key == "extra_delay_us") {
      st = json::ReadInt64(where + "." + key, item, &g.extra_delay);
    } else if (key == "kind") {
      std::string name;
      st = json::ReadString(where + "." + key, item, &name);
      if (st.ok()) {
        if (name == "slow_link") {
          g.kind = GrayFaultKind::kSlowLink;
        } else if (name == "asym_partition") {
          g.kind = GrayFaultKind::kAsymPartition;
        } else if (name == "process_stall") {
          g.kind = GrayFaultKind::kProcessStall;
        } else if (name == "fsync_stall") {
          g.kind = GrayFaultKind::kFsyncStall;
        } else {
          return Status::InvalidArgument(
              where + ".kind is '" + name +
              "'; expected slow_link, asym_partition, process_stall, or "
              "fsync_stall");
        }
      }
    } else if (key == "slow_factor") {
      st = json::ReadDouble(where + "." + key, item, &g.slow_factor);
    } else {
      return Status::InvalidArgument("unknown fault-plan field '" + where +
                                     "." + key + "'");
    }
    if (!st.ok()) return st;
  }
  return g;
}

Result<LinkFault> ParseLinkFault(const json::Value& v, size_t index) {
  const std::string where = "link_faults[" + std::to_string(index) + "]";
  if (v.kind != json::Value::Kind::kObject) {
    return json::WrongType(where, "an object");
  }
  LinkFault f;
  for (const auto& [key, item] : v.members) {
    Status st;
    if (key == "active_from_us") {
      st = json::ReadInt64(where + "." + key, item, &f.active_from);
    } else if (key == "active_until_us") {
      st = json::ReadInt64(where + "." + key, item, &f.active_until);
    } else if (key == "delay_us") {
      st = json::ReadInt64(where + "." + key, item, &f.delay);
    } else if (key == "duplicate") {
      st = json::ReadDouble(where + "." + key, item, &f.duplicate);
    } else if (key == "from") {
      st = json::ReadInt(where + "." + key, item, &f.from);
    } else if (key == "loss") {
      st = json::ReadDouble(where + "." + key, item, &f.loss);
    } else if (key == "reorder") {
      st = json::ReadDouble(where + "." + key, item, &f.reorder);
    } else if (key == "reorder_window_us") {
      st = json::ReadInt64(where + "." + key, item, &f.reorder_window);
    } else if (key == "to") {
      st = json::ReadInt(where + "." + key, item, &f.to);
    } else {
      return Status::InvalidArgument("unknown fault-plan field '" + where +
                                     "." + key + "'");
    }
    if (!st.ok()) return st;
  }
  return f;
}

Result<NodeEvent> ParseNodeEvent(const json::Value& v, size_t index) {
  const std::string where = "node_events[" + std::to_string(index) + "]";
  if (v.kind != json::Value::Kind::kObject) {
    return json::WrongType(where, "an object");
  }
  NodeEvent e;
  for (const auto& [key, item] : v.members) {
    Status st;
    if (key == "at_us") {
      st = json::ReadInt64(where + "." + key, item, &e.at);
    } else if (key == "node") {
      st = json::ReadInt(where + "." + key, item, &e.node);
    } else if (key == "up") {
      st = json::ReadBool(where + "." + key, item, &e.up);
    } else {
      return Status::InvalidArgument("unknown fault-plan field '" + where +
                                     "." + key + "'");
    }
    if (!st.ok()) return st;
  }
  return e;
}

Result<PartitionEvent> ParsePartitionEvent(const json::Value& v,
                                           size_t index) {
  const std::string where = "partition_events[" + std::to_string(index) + "]";
  if (v.kind != json::Value::Kind::kObject) {
    return json::WrongType(where, "an object");
  }
  PartitionEvent e;
  for (const auto& [key, item] : v.members) {
    Status st;
    if (key == "a") {
      st = json::ReadInt(where + "." + key, item, &e.a);
    } else if (key == "at_us") {
      st = json::ReadInt64(where + "." + key, item, &e.at);
    } else if (key == "b") {
      st = json::ReadInt(where + "." + key, item, &e.b);
    } else if (key == "partitioned") {
      st = json::ReadBool(where + "." + key, item, &e.partitioned);
    } else {
      return Status::InvalidArgument("unknown fault-plan field '" + where +
                                     "." + key + "'");
    }
    if (!st.ok()) return st;
  }
  return e;
}

}  // namespace

Result<FaultPlan> FaultPlan::FromJsonValue(const json::Value& root) {
  if (root.kind != json::Value::Kind::kObject) {
    return Status::InvalidArgument("fault plan JSON must be an object");
  }
  FaultPlan plan;
  for (const auto& [key, v] : root.members) {
    if (v.kind != json::Value::Kind::kArray) {
      return json::WrongType(key, "an array");
    }
    if (key == "gray_faults") {
      for (size_t i = 0; i < v.items.size(); ++i) {
        auto g = ParseGrayFault(v.items[i], i);
        if (!g.ok()) return g.status();
        plan.gray_faults.push_back(std::move(g).value());
      }
    } else if (key == "link_faults") {
      for (size_t i = 0; i < v.items.size(); ++i) {
        auto f = ParseLinkFault(v.items[i], i);
        if (!f.ok()) return f.status();
        plan.link_faults.push_back(std::move(f).value());
      }
    } else if (key == "node_events") {
      for (size_t i = 0; i < v.items.size(); ++i) {
        auto e = ParseNodeEvent(v.items[i], i);
        if (!e.ok()) return e.status();
        plan.node_events.push_back(std::move(e).value());
      }
    } else if (key == "partition_events") {
      for (size_t i = 0; i < v.items.size(); ++i) {
        auto e = ParsePartitionEvent(v.items[i], i);
        if (!e.ok()) return e.status();
        plan.partition_events.push_back(std::move(e).value());
      }
    } else {
      return Status::InvalidArgument("unknown fault-plan field '" + key + "'");
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromJson(const std::string& text) {
  auto parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FromJsonValue(parsed.value());
}

}  // namespace helios::sim
