// Single-server processing queue modeling compute and I/O overhead.
//
// The paper's Appendix A.1 calls the cumulative effect of request
// processing, log handling, and storage I/O the "compute overhead"
// (C_local, C_remote in Eq. 8); it is what caps peak throughput in
// Figure 4 and what makes the 2PC/Paxos coordinator thrash. Each simulated
// server owns one of these queues: every piece of work occupies the server
// for its service time, and work arriving while the server is busy waits.

#ifndef HELIOS_SIM_SERVICE_QUEUE_H_
#define HELIOS_SIM_SERVICE_QUEUE_H_

#include <algorithm>

#include "common/types.h"
#include "sim/scheduler.h"

namespace helios::sim {

/// FIFO single-server queue. Not a container: it simply tracks when the
/// server frees up and schedules completions on the shared scheduler.
class ServiceQueue {
 public:
  explicit ServiceQueue(Scheduler* scheduler) : scheduler_(scheduler) {}

  /// Submits work with the given service time; `done` runs when the server
  /// has finished it (after any queueing delay).
  void Submit(Duration service_time, Scheduler::Callback done) {
    const SimTime start = std::max(scheduler_->Now(), busy_until_);
    busy_until_ = start + std::max<Duration>(service_time, 0);
    total_busy_ += busy_until_ - start;
    scheduler_->At(busy_until_, std::move(done));
  }

  /// Occupies the server without a completion callback (e.g. background
  /// bookkeeping cost that delays subsequent work).
  void Charge(Duration service_time) {
    const SimTime start = std::max(scheduler_->Now(), busy_until_);
    busy_until_ = start + std::max<Duration>(service_time, 0);
    total_busy_ += busy_until_ - start;
  }

  /// Time at which currently queued work completes.
  SimTime busy_until() const { return busy_until_; }

  /// Instantaneous queueing delay a new arrival would see.
  Duration backlog() const {
    return std::max<Duration>(0, busy_until_ - scheduler_->Now());
  }

  /// Cumulative busy time, for utilization reporting.
  Duration total_busy() const { return total_busy_; }

 private:
  Scheduler* scheduler_;
  SimTime busy_until_ = 0;
  Duration total_busy_ = 0;
};

}  // namespace helios::sim

#endif  // HELIOS_SIM_SERVICE_QUEUE_H_
