#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace helios::sim {

Network::Network(Scheduler* scheduler, int n, uint64_t seed)
    : scheduler_(scheduler),
      n_(n),
      rng_(seed),
      links_(static_cast<size_t>(n) * n),
      last_delivery_(static_cast<size_t>(n) * n, 0),
      partitioned_(static_cast<size_t>(n) * n, false),
      up_(static_cast<size_t>(n), true) {
  assert(n > 0);
}

void Network::SetLink(int a, int b, LinkSpec spec) {
  assert(a != b && a >= 0 && b >= 0 && a < n_ && b < n_);
  links_[ChannelIndex(a, b)] = spec;
  links_[ChannelIndex(b, a)] = spec;
}

void Network::SetRtt(int a, int b, Duration rtt_mean, Duration rtt_stddev) {
  // A round trip is the sum of two independent one-way samples, whose
  // standard deviations add in quadrature: one-way sigma = RTT sigma / sqrt(2).
  const Duration one_way_stddev =
      static_cast<Duration>(static_cast<double>(rtt_stddev) / std::sqrt(2.0));
  SetLink(a, b, LinkSpec{rtt_mean / 2, one_way_stddev});
}

Duration Network::MeanRtt(int a, int b) const {
  assert(a != b);
  return links_[ChannelIndex(a, b)].one_way_mean +
         links_[ChannelIndex(b, a)].one_way_mean;
}

Duration Network::SampleOneWay(int from, int to) {
  const LinkSpec& spec = links_[ChannelIndex(from, to)];
  if (spec.one_way_stddev == 0) return spec.one_way_mean;
  const double sample =
      rng_.Normal(static_cast<double>(spec.one_way_mean),
                  static_cast<double>(spec.one_way_stddev));
  // Latency can never go below a small propagation floor.
  const double floor = static_cast<double>(spec.one_way_mean) * 0.5;
  return static_cast<Duration>(std::max(sample, floor));
}

Duration Network::SampleRtt(int a, int b) {
  return SampleOneWay(a, b) + SampleOneWay(b, a);
}

void Network::Send(int from, int to, std::function<void()> deliver) {
  SendSized(from, to, 0, std::move(deliver));
}

void Network::SendSized(int from, int to, size_t size_bytes,
                        std::function<void()> deliver) {
  assert(from != to);
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  if (!up_[from] || partitioned_[ChannelIndex(from, to)]) {
    ++messages_dropped_;
    if (trace_ != nullptr) {
      trace_->Instant(obs::EventKind::kNetDrop, from, TxnId{},
                      scheduler_->Now(), to,
                      up_[from] ? "partitioned" : "sender-down");
    }
    return;
  }
  const int ch = ChannelIndex(from, to);
  Duration transmission = 0;
  if (bandwidth_bps_ > 0 && size_bytes > 0) {
    transmission = static_cast<Duration>(
        static_cast<double>(size_bytes) * 1e6 /
        static_cast<double>(bandwidth_bps_));
  }
  SimTime arrive =
      scheduler_->Now() + transmission + SampleOneWay(from, to);
  // FIFO: never overtake the previous message on this channel; with
  // bandwidth modeling the channel is also occupied for the transmission
  // time.
  arrive = std::max(arrive, last_delivery_[ch] + transmission);
  last_delivery_[ch] = arrive;
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kNetHop, from, TxnId{}, scheduler_->Now(),
                 arrive, to);
  }
  scheduler_->At(arrive, [this, from, to, deliver = std::move(deliver)]() {
    if (!up_[to]) {
      ++messages_dropped_;
      if (trace_ != nullptr) {
        trace_->Instant(obs::EventKind::kNetDrop, to, TxnId{},
                        scheduler_->Now(), from, "receiver-down");
      }
      return;  // Receiver is down: the message is lost.
    }
    deliver();
  });
}

void Network::CrashNode(int node) {
  assert(node >= 0 && node < n_);
  up_[node] = false;
}

void Network::RecoverNode(int node) {
  assert(node >= 0 && node < n_);
  up_[node] = true;
}

void Network::SetPartitioned(int a, int b, bool partitioned) {
  assert(a != b);
  partitioned_[ChannelIndex(a, b)] = partitioned;
  partitioned_[ChannelIndex(b, a)] = partitioned;
}

bool Network::IsPartitioned(int a, int b) const {
  return partitioned_[ChannelIndex(a, b)];
}

}  // namespace helios::sim
