#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace helios::sim {

Network::Network(Scheduler* scheduler, int n, uint64_t seed)
    : scheduler_(scheduler),
      n_(n),
      rng_(seed),
      links_(static_cast<size_t>(n) * n),
      last_delivery_(static_cast<size_t>(n) * n, 0),
      partitioned_(static_cast<size_t>(n) * n, false),
      up_(static_cast<size_t>(n), true) {
  assert(n > 0);
}

void Network::SetLink(int a, int b, LinkSpec spec) {
  assert(a != b && a >= 0 && b >= 0 && a < n_ && b < n_);
  links_[ChannelIndex(a, b)] = spec;
  links_[ChannelIndex(b, a)] = spec;
}

void Network::SetRtt(int a, int b, Duration rtt_mean, Duration rtt_stddev) {
  // A round trip is the sum of two independent one-way samples, whose
  // standard deviations add in quadrature: one-way sigma = RTT sigma / sqrt(2).
  const Duration one_way_stddev =
      static_cast<Duration>(static_cast<double>(rtt_stddev) / std::sqrt(2.0));
  SetLink(a, b, LinkSpec{rtt_mean / 2, one_way_stddev});
}

Duration Network::MeanRtt(int a, int b) const {
  assert(a != b);
  return links_[ChannelIndex(a, b)].one_way_mean +
         links_[ChannelIndex(b, a)].one_way_mean;
}

Duration Network::SampleOneWayWith(Rng& rng, int from, int to) {
  const LinkSpec& spec = links_[ChannelIndex(from, to)];
  if (spec.one_way_stddev == 0) return spec.one_way_mean;
  const double sample =
      rng.Normal(static_cast<double>(spec.one_way_mean),
                 static_cast<double>(spec.one_way_stddev));
  // Latency can never go below a small propagation floor.
  const double floor = static_cast<double>(spec.one_way_mean) * 0.5;
  return static_cast<Duration>(std::max(sample, floor));
}

Duration Network::SampleOneWay(int from, int to) {
  return SampleOneWayWith(rng_, from, to);
}

Duration Network::SampleRtt(int a, int b) {
  return SampleOneWay(a, b) + SampleOneWay(b, a);
}

void Network::Send(int from, int to, std::function<void()> deliver) {
  SendSized(from, to, 0, std::move(deliver));
}

void Network::ScheduleDelivery(int from, int to, SimTime arrive,
                               std::function<void()> deliver) {
  if (trace_ != nullptr) {
    trace_->Span(obs::EventKind::kNetHop, from, TxnId{}, scheduler_->Now(),
                 arrive, to);
  }
  scheduler_->At(arrive, [this, from, to, deliver = std::move(deliver)]() {
    if (!up_[to]) {
      ++messages_dropped_;
      if (trace_ != nullptr) {
        trace_->Instant(obs::EventKind::kNetDrop, to, TxnId{},
                        scheduler_->Now(), from, "receiver-down");
      }
      return;  // Receiver is down: the message is lost.
    }
    deliver();
  });
}

void Network::SendSized(int from, int to, size_t size_bytes,
                        std::function<void()> deliver) {
  assert(from != to);
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  if (!up_[from] || partitioned_[ChannelIndex(from, to)]) {
    ++messages_dropped_;
    if (trace_ != nullptr) {
      trace_->Instant(obs::EventKind::kNetDrop, from, TxnId{},
                      scheduler_->Now(), to,
                      up_[from] ? "partitioned" : "sender-down");
    }
    return;
  }

  // Gray degradations first: deterministic, so they consume no randomness
  // wherever they sit, but dropping before the fault block keeps the fault
  // RNG stream identical whether or not an asymmetric partition is also
  // configured on other links.
  if (!gray_faults_.empty()) {
    const SimTime now = scheduler_->Now();
    for (const GrayFault& g : gray_faults_) {
      if (g.kind == GrayFaultKind::kAsymPartition &&
          g.ActiveOn(from, to, now)) {
        ++messages_dropped_;
        ++gray_asym_drops_;
        if (trace_ != nullptr) {
          trace_->Instant(obs::EventKind::kNetDrop, from, TxnId{}, now, to,
                          "gray:asym");
        }
        return;
      }
    }
  }

  // Message faults, drawn in fixed order per matching fault so every run
  // with the same fault seed makes identical decisions. With no installed
  // message faults this whole block is a vector-empty check.
  Duration fault_delay = 0;
  bool reordered = false;
  bool duplicated = false;
  if (!message_faults_.empty()) {
    const SimTime now = scheduler_->Now();
    for (const LinkFault& f : message_faults_) {
      if (!f.ActiveOn(from, to, now)) continue;
      if (f.loss > 0.0 && fault_rng_.Bernoulli(f.loss)) {
        ++messages_dropped_;
        ++fault_drops_;
        if (trace_ != nullptr) {
          trace_->Instant(obs::EventKind::kNetDrop, from, TxnId{}, now, to,
                          "fault:loss");
        }
        return;
      }
      fault_delay += f.delay;
      if (f.reorder > 0.0 && fault_rng_.Bernoulli(f.reorder)) {
        reordered = true;
        fault_delay += static_cast<Duration>(
            fault_rng_.Uniform(static_cast<uint64_t>(f.reorder_window)));
      }
      if (f.duplicate > 0.0 && fault_rng_.Bernoulli(f.duplicate)) {
        duplicated = true;
      }
    }
  }

  const int ch = ChannelIndex(from, to);
  Duration transmission = 0;
  if (bandwidth_bps_ > 0 && size_bytes > 0) {
    transmission = static_cast<Duration>(
        static_cast<double>(size_bytes) * 1e6 /
        static_cast<double>(bandwidth_bps_));
  }
  const SimTime send_now = scheduler_->Now();
  SimTime arrive = send_now + transmission +
                   ApplyGraySlow(from, to, send_now, SampleOneWay(from, to)) +
                   fault_delay;
  if (reordered) {
    // A reordered message is exempt from the FIFO clamp and leaves the
    // watermark alone — it may overtake or be overtaken, and later traffic
    // is not held back behind it (otherwise a reorder would degrade into a
    // delay for everything after it).
    ++fault_reorders_;
  } else {
    // FIFO: never overtake the previous message on this channel; with
    // bandwidth modeling the channel is also occupied for the transmission
    // time.
    arrive = std::max(arrive, last_delivery_[ch] + transmission);
    last_delivery_[ch] = arrive;
  }
  if (duplicated) {
    // The copy takes its own independently sampled path and also skips the
    // FIFO machinery, like a stray retransmission on a real network.
    ++fault_duplicates_;
    const SimTime copy_arrive =
        send_now + transmission +
        ApplyGraySlow(from, to, send_now,
                      SampleOneWayWith(fault_rng_, from, to)) +
        fault_delay;
    ScheduleDelivery(from, to, copy_arrive, deliver);
  }
  ScheduleDelivery(from, to, arrive, std::move(deliver));
}

Duration Network::ApplyGraySlow(int from, int to, SimTime now,
                                Duration one_way) {
  if (gray_faults_.empty()) return one_way;
  bool slowed = false;
  for (const GrayFault& g : gray_faults_) {
    if (g.kind != GrayFaultKind::kSlowLink || !g.ActiveOn(from, to, now)) {
      continue;
    }
    one_way = static_cast<Duration>(static_cast<double>(one_way) *
                                    g.slow_factor) +
              g.extra_delay;
    slowed = true;
  }
  if (slowed) ++gray_slowed_;
  return one_way;
}

Status Network::InstallGrayFaults(const FaultPlan& plan) {
  if (Status s = plan.Validate(n_); !s.ok()) return s;
  gray_faults_.clear();
  for (const GrayFault& g : plan.gray_faults) {
    if (g.IsLinkKind()) gray_faults_.push_back(g);
  }
  return Status::Ok();
}

Status Network::InstallMessageFaults(const FaultPlan& plan,
                                     uint64_t fault_seed) {
  if (Status s = plan.Validate(n_); !s.ok()) return s;
  message_faults_.clear();
  for (const LinkFault& f : plan.link_faults) {
    if (f.HasEffect()) message_faults_.push_back(f);
  }
  fault_rng_ = Rng(fault_seed);
  return Status::Ok();
}

namespace {

Status BadNode(const char* op, int node, int n) {
  return Status::InvalidArgument(
      std::string(op) + ": datacenter " + std::to_string(node) +
      " does not exist (valid: 0.." + std::to_string(n - 1) + ")");
}

}  // namespace

Status Network::CrashNode(int node) {
  if (node < 0 || node >= n_) return BadNode("CrashNode", node, n_);
  up_[node] = false;
  return Status::Ok();
}

Status Network::RecoverNode(int node) {
  if (node < 0 || node >= n_) return BadNode("RecoverNode", node, n_);
  up_[node] = true;
  return Status::Ok();
}

Status Network::SetPartitioned(int a, int b, bool partitioned) {
  if (a < 0 || a >= n_) return BadNode("SetPartitioned", a, n_);
  if (b < 0 || b >= n_) return BadNode("SetPartitioned", b, n_);
  if (a == b) {
    return Status::InvalidArgument(
        "SetPartitioned: cannot partition datacenter " + std::to_string(a) +
        " from itself");
  }
  partitioned_[ChannelIndex(a, b)] = partitioned;
  partitioned_[ChannelIndex(b, a)] = partitioned;
  return Status::Ok();
}

bool Network::IsPartitioned(int a, int b) const {
  return partitioned_[ChannelIndex(a, b)];
}

}  // namespace helios::sim
