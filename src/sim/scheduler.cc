#include "sim/scheduler.h"

#include <cassert>
#include <utility>

namespace helios::sim {

void Scheduler::At(SimTime t, Callback cb) {
  assert(cb);
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Scheduler::After(Duration delay, Callback cb) {
  At(now_ + (delay > 0 ? delay : 0), std::move(cb));
}

void Scheduler::Dispatch(Event e) {
  now_ = e.time;
  ++events_processed_;
  e.cb();
}

void Scheduler::Run() {
  while (!queue_.empty()) {
    Event e = queue_.top();
    queue_.pop();
    Dispatch(std::move(e));
  }
}

size_t Scheduler::RunUntil(SimTime t) {
  size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event e = queue_.top();
    queue_.pop();
    Dispatch(std::move(e));
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  Event e = queue_.top();
  queue_.pop();
  Dispatch(std::move(e));
  return true;
}

}  // namespace helios::sim
