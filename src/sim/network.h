// Wide-area network model connecting simulated datacenters.
//
// Each directed channel delivers messages FIFO with a per-message one-way
// latency sampled from Normal(mean, stddev) — the mean and standard
// deviation come straight from the paper's Table 2 RTT measurements
// (one-way = RTT / 2). Links are symmetric in the mean, per the theoretical
// model's assumptions, but each direction samples its own jitter.
//
// The model also supports the failure scenarios of Section 4.4: crashing and
// recovering datacenters and cutting individual links (network partitions).
// Messages to or from a crashed datacenter, or across a cut link, are
// silently dropped — exactly what a protocol observes in practice.
//
// Beyond those clean failures, InstallMessageFaults activates a FaultPlan's
// probabilistic link faults (loss, duplication, reordering, delay spikes)
// inside every delivery. Fault decisions draw from a dedicated RNG so a
// plan with no message faults leaves the latency sampling stream — and
// therefore every simulated timestamp — bit-for-bit unchanged.

#ifndef HELIOS_SIM_NETWORK_H_
#define HELIOS_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/trace.h"
#include "sim/fault_plan.h"
#include "sim/scheduler.h"

namespace helios::sim {

/// One-way latency parameters of a link direction.
struct LinkSpec {
  Duration one_way_mean = Millis(50);
  Duration one_way_stddev = 0;
};

/// The simulated WAN.
class Network {
 public:
  /// `scheduler` must outlive the network. `n` is the datacenter count.
  Network(Scheduler* scheduler, int n, uint64_t seed);

  int size() const { return n_; }

  /// Sets both directions of the link between `a` and `b`.
  void SetLink(int a, int b, LinkSpec spec);

  /// Convenience: configures the link from an RTT mean/stddev in
  /// *microseconds* (one-way = RTT/2, one-way stddev = RTT stddev/2).
  void SetRtt(int a, int b, Duration rtt_mean, Duration rtt_stddev);

  /// Configured mean RTT between `a` and `b` (a != b).
  Duration MeanRtt(int a, int b) const;

  /// Sends a message from `a` to `b`. `deliver` runs at the receive time
  /// unless the message is dropped (crash/partition). Delivery on each
  /// directed channel is FIFO: a message never overtakes an earlier one.
  void Send(int from, int to, std::function<void()> deliver);

  /// Like Send, but also models transmission time for a message of
  /// `size_bytes` when a link bandwidth is configured (latency +=
  /// size/bandwidth, and the channel is occupied for that long).
  void SendSized(int from, int to, size_t size_bytes,
                 std::function<void()> deliver);

  /// Sets the per-direction link bandwidth used by SendSized; 0 (default)
  /// disables transmission-time modeling.
  void set_bandwidth_bytes_per_sec(int64_t bps) { bandwidth_bps_ = bps; }
  int64_t bandwidth_bytes_per_sec() const { return bandwidth_bps_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Samples a full round trip (two independent one-way samples); used by
  /// the RTT-measurement bench that regenerates Table 2.
  Duration SampleRtt(int a, int b);

  // --- Failure injection ------------------------------------------------

  /// Crashes `node`: all in-flight messages to it are dropped on arrival and
  /// no messages originating from it are delivered until recovery.
  /// Rejects out-of-range node indices.
  Status CrashNode(int node);
  Status RecoverNode(int node);
  bool IsUp(int node) const { return up_[node]; }

  /// Cuts or restores the (bidirectional) link between `a` and `b`.
  /// Rejects out-of-range indices and self-partitioning (a == b).
  Status SetPartitioned(int a, int b, bool partitioned);
  bool IsPartitioned(int a, int b) const;

  /// Activates `plan`'s probabilistic link faults on every subsequent
  /// delivery, drawing decisions from a dedicated RNG seeded with
  /// `fault_seed`. The plan must already be validated against this
  /// network's size. Per message, in fixed draw order per matching fault:
  /// loss drops it; a delay spike adds deterministic latency; reordering
  /// adds Uniform[0, window) latency and exempts the message from the
  /// FIFO clamp (so it can overtake); duplication schedules a second,
  /// independently delayed copy. A plan with no message faults leaves the
  /// delivery path byte-identical to an uninstalled one.
  Status InstallMessageFaults(const FaultPlan& plan, uint64_t fault_seed);

  /// Activates `plan`'s gray link degradations (slow_link, asym_partition)
  /// on every subsequent delivery. Deterministic: an asymmetric partition
  /// drops every matching message, a slow link multiplies the sampled
  /// latency by slow_factor and adds extra_delay (FIFO preserved — the
  /// link is slow, not reordering). No RNG is consumed, so a plan without
  /// gray link faults leaves every delivery bit-identical. Node-level gray
  /// kinds (process/fsync stall) are the harness's job, not the network's.
  Status InstallGrayFaults(const FaultPlan& plan);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t fault_drops() const { return fault_drops_; }
  uint64_t fault_duplicates() const { return fault_duplicates_; }
  uint64_t fault_reorders() const { return fault_reorders_; }
  uint64_t gray_asym_drops() const { return gray_asym_drops_; }
  uint64_t gray_slowed() const { return gray_slowed_; }

  /// Optional message-hop tracing (src/obs): every delivery becomes a
  /// net.hop span from send to receive; drops become net.drop instants.
  /// Null (the default) disables with a single pointer check per send.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  int ChannelIndex(int from, int to) const { return from * n_ + to; }
  Duration SampleOneWay(int from, int to);
  Duration SampleOneWayWith(Rng& rng, int from, int to);
  /// Applies active slow_link gray faults to a sampled one-way latency.
  Duration ApplyGraySlow(int from, int to, SimTime now, Duration one_way);
  void ScheduleDelivery(int from, int to, SimTime arrive,
                        std::function<void()> deliver);

  Scheduler* scheduler_;
  int n_;
  Rng rng_;
  std::vector<LinkSpec> links_;          // indexed by ChannelIndex
  std::vector<SimTime> last_delivery_;   // FIFO watermark per channel
  std::vector<bool> partitioned_;        // per channel
  std::vector<bool> up_;                 // per node
  obs::TraceRecorder* trace_ = nullptr;
  int64_t bandwidth_bps_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;

  // Message-fault state (InstallMessageFaults). Kept out of the hot path
  // entirely when no fault has an effect.
  std::vector<LinkFault> message_faults_;
  Rng fault_rng_{0};
  uint64_t fault_drops_ = 0;
  uint64_t fault_duplicates_ = 0;
  uint64_t fault_reorders_ = 0;

  // Gray link degradations (InstallGrayFaults); only link kinds are kept.
  std::vector<GrayFault> gray_faults_;
  uint64_t gray_asym_drops_ = 0;
  uint64_t gray_slowed_ = 0;
};

}  // namespace helios::sim

#endif  // HELIOS_SIM_NETWORK_H_
