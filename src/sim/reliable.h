// Reliable-delivery session layer over the lossy simulated WAN.
//
// sim::Network with an active FaultPlan loses, duplicates, and reorders
// messages. Helios itself shrugs that off at the protocol level (the
// timetable resends unacked log records every interval and Ingest is
// idempotent), but the baselines' request/reply RPCs are not loss-tolerant:
// one dropped Paxos reply wedges a closed-loop client forever. ReliableMesh
// restores exactly-once, in-order delivery per directed datacenter pair the
// way real stacks do — sequence numbers, cumulative acks, and timeout
// retransmission with exponential backoff — so every protocol can run its
// unmodified logic over a faulty network.
//
// Determinism contract: when disabled (the zero-fault default) every call
// forwards straight to Network with no sequence numbers, no acks, and no
// extra RNG draws, so fault-free runs stay bit-for-bit identical to a
// build without this layer. Acks and retransmissions themselves travel
// over the same faulty links; cumulative acking makes their loss safe.

#ifndef HELIOS_SIM_RELIABLE_H_
#define HELIOS_SIM_RELIABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace helios::sim {

struct ReliableConfig {
  bool enabled = true;
  /// Initial retransmission timeout = link mean RTT x this multiplier,
  /// clamped to [min_rto, max_rto]; doubles (x backoff) per retry.
  double rto_rtt_multiplier = 2.0;
  Duration min_rto = Millis(10);
  Duration max_rto = Seconds(5);
  double backoff = 2.0;
  /// Transmissions per message before giving up; 0 retries forever, which
  /// is the right default under a FaultPlan whose faults eventually end.
  int max_attempts = 0;
};

/// One reliable session per directed datacenter pair, multiplexed over a
/// Network. Both must outlive the mesh, and all sends between a fixed pair
/// of protocol endpoints must go through the same mesh (sequence numbers
/// are per directed pair, not per connection).
class ReliableMesh {
 public:
  ReliableMesh(Scheduler* scheduler, Network* network,
               ReliableConfig config = {});

  bool enabled() const { return config_.enabled; }

  /// Reliable counterparts of Network::Send / SendSized: `deliver` runs
  /// exactly once at the receiver, in send order per directed pair, as
  /// long as faults eventually relent (and max_attempts permits).
  void Send(int from, int to, std::function<void()> deliver);
  void SendSized(int from, int to, size_t size_bytes,
                 std::function<void()> deliver);

  /// Optional retransmit tracing: each resend becomes a net.retransmit
  /// span covering the timeout wait that triggered it.
  void set_trace_recorder(obs::TraceRecorder* trace) { trace_ = trace; }

  uint64_t retransmits() const { return retransmits_; }
  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t gave_up() const { return gave_up_; }

 private:
  /// One in-flight message. `deliver` and `size_bytes` are captured once
  /// at Send time and reused verbatim by every retransmission: the
  /// payload is a shared immutable EnvelopePtr inside the closure and the
  /// size was computed by the sender's sizer on the first transmission,
  /// so retries never re-encode or re-measure the message.
  struct Packet {
    std::function<void()> deliver;
    size_t size_bytes = 0;
    int attempts = 0;
    Duration rto = 0;
    SimTime last_tx = 0;
  };
  /// State of one directed pair: sender side (next_seq, unacked) and
  /// receiver side (delivered_through, reorder buffer) live together
  /// because the simulator models both hosts.
  struct Channel {
    uint64_t next_seq = 1;
    std::map<uint64_t, Packet> unacked;
    uint64_t delivered_through = 0;
    std::map<uint64_t, std::function<void()>> buffer;
  };

  Channel& Chan(int from, int to) {
    return channels_[static_cast<size_t>(from) * n_ + static_cast<size_t>(to)];
  }
  Duration InitialRto(int from, int to) const;
  void TransmitData(int from, int to, uint64_t seq, size_t size_bytes);
  void ArmTimer(int from, int to, uint64_t seq, Duration rto);
  void OnData(int from, int to, uint64_t seq);
  void SendAck(int from, int to);
  void OnAck(int from, int to, uint64_t cumulative);

  Scheduler* scheduler_;
  Network* network_;
  ReliableConfig config_;
  int n_;
  std::vector<Channel> channels_;
  obs::TraceRecorder* trace_ = nullptr;
  uint64_t retransmits_ = 0;
  uint64_t duplicates_suppressed_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t gave_up_ = 0;
};

}  // namespace helios::sim

#endif  // HELIOS_SIM_RELIABLE_H_
