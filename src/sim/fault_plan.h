// FaultPlan: a declarative, JSON-round-trippable schedule of faults for
// the simulated WAN — the chaos-harness counterpart of ExperimentSpec.
//
// Real geo-links do not limit themselves to the two clean failure modes
// the simulator originally modeled (whole-node crash, binary partition):
// they lose, duplicate, reorder, and delay-spike packets. A FaultPlan
// describes all of those as data:
//
//   - LinkFault: a probabilistic message-fault process on one directed
//     link (or a wildcard over all links), active over a time window —
//     per-message loss probability, duplication probability, reordering
//     (extra random latency inside a window, exempt from FIFO), and a
//     deterministic delay spike.
//   - NodeEvent: timed crash / recover of a datacenter.
//   - PartitionEvent: timed cut / heal of a (bidirectional) link.
//   - GrayFault: a deterministic slow-but-alive degradation — sustained
//     link slowdown, one-directional (asymmetric) partition, process
//     stall, or fsync stall — the gray-failure modes that fail-stop
//     machinery never notices because nothing actually dies.
//
// Message-level faults are applied inside sim::Network deliveries, drawn
// from a dedicated RNG seeded from the experiment seed, so every chaos run
// is bit-for-bit reproducible and fault decisions never perturb the
// latency sampling stream. Timed events are scheduled by the harness
// (which also flips node-level down flags). See docs/FAULTS.md.

#ifndef HELIOS_SIM_FAULT_PLAN_H_
#define HELIOS_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/scheduler.h"

namespace helios::sim {

/// "Forever" for fault-activity windows.
inline constexpr SimTime kMaxSimTime = std::numeric_limits<int64_t>::max();

/// Sentinel for "any datacenter" in a LinkFault endpoint.
inline constexpr int kAnyDc = -1;

/// A probabilistic message-fault process on one directed link, active over
/// [active_from, active_until). Wildcard endpoints (kAnyDc) match every
/// sender/receiver. Multiple matching faults compose: probabilities are
/// drawn independently per fault, delays add.
struct LinkFault {
  int from = kAnyDc;
  int to = kAnyDc;
  double loss = 0.0;       ///< P(message silently dropped).
  double duplicate = 0.0;  ///< P(a second, independently delayed copy).
  /// P(message gets extra latency uniform in [0, reorder_window] and is
  /// exempted from the channel's FIFO clamp, so it can overtake).
  double reorder = 0.0;
  Duration reorder_window = 0;
  /// Deterministic extra one-way latency while active (a delay spike).
  Duration delay = 0;
  SimTime active_from = 0;
  SimTime active_until = kMaxSimTime;

  bool ActiveOn(int f, int t, SimTime now) const {
    return (from == kAnyDc || from == f) && (to == kAnyDc || to == t) &&
           now >= active_from && now < active_until;
  }
  bool HasEffect() const {
    return loss > 0.0 || duplicate > 0.0 || reorder > 0.0 || delay > 0;
  }

  friend bool operator==(const LinkFault& a, const LinkFault& b) {
    return a.from == b.from && a.to == b.to && a.loss == b.loss &&
           a.duplicate == b.duplicate && a.reorder == b.reorder &&
           a.reorder_window == b.reorder_window && a.delay == b.delay &&
           a.active_from == b.active_from && a.active_until == b.active_until;
  }
};

/// Kinds of gray (slow-but-alive) faults. Unlike LinkFault's probabilistic
/// processes these are *deterministic* degradations: no RNG draw is ever
/// made for them, so adding a gray fault to a plan perturbs neither the
/// latency sampling stream nor the message-fault stream.
enum class GrayFaultKind {
  /// Every message on the directed link a->b takes slow_factor times its
  /// sampled latency plus extra_delay. FIFO order is preserved — the link
  /// is slow, not lossy or reordering.
  kSlowLink,
  /// Messages a->b silently vanish while b->a still flows: a half-open
  /// link, the classic gray partition that binary PartitionEvent cannot
  /// express.
  kAsymPartition,
  /// Datacenter `a`'s event loop freezes for the window (GC pause, VM
  /// migration, scheduler starvation): it receives but processes nothing
  /// and sends nothing until the window ends.
  kProcessStall,
  /// Datacenter `a`'s storage turns syrup-slow: every record it persists
  /// costs an extra `extra_delay` of service time while active.
  kFsyncStall,
};

/// One deterministic gray degradation, active over [active_from,
/// active_until). Link kinds use the directed pair (a, b) with kAnyDc
/// wildcards; node kinds use `a` only.
struct GrayFault {
  GrayFaultKind kind = GrayFaultKind::kSlowLink;
  int a = kAnyDc;
  int b = kAnyDc;
  /// kSlowLink: multiplier on the sampled one-way latency (>= 1).
  double slow_factor = 1.0;
  /// kSlowLink: additive per-message latency. kFsyncStall: per-record
  /// extra service time. Unused otherwise.
  Duration extra_delay = 0;
  SimTime active_from = 0;
  SimTime active_until = kMaxSimTime;

  bool ActiveOn(int f, int t, SimTime now) const {
    return (a == kAnyDc || a == f) && (b == kAnyDc || b == t) &&
           now >= active_from && now < active_until;
  }
  bool IsLinkKind() const {
    return kind == GrayFaultKind::kSlowLink ||
           kind == GrayFaultKind::kAsymPartition;
  }

  friend bool operator==(const GrayFault& x, const GrayFault& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b &&
           x.slow_factor == y.slow_factor && x.extra_delay == y.extra_delay &&
           x.active_from == y.active_from && x.active_until == y.active_until;
  }
};

/// Round-trips GrayFaultKind to the JSON spelling ("slow_link", ...).
const char* GrayFaultKindName(GrayFaultKind kind);

/// Timed crash (up = false) or recovery (up = true) of one datacenter.
struct NodeEvent {
  SimTime at = 0;
  int node = 0;
  bool up = false;

  friend bool operator==(const NodeEvent& a, const NodeEvent& b) {
    return a.at == b.at && a.node == b.node && a.up == b.up;
  }
};

/// Timed cut (partitioned = true) or heal of the link between `a` and `b`.
struct PartitionEvent {
  SimTime at = 0;
  int a = 0;
  int b = 0;
  bool partitioned = true;

  friend bool operator==(const PartitionEvent& x, const PartitionEvent& y) {
    return x.at == y.at && x.a == y.a && x.b == y.b &&
           x.partitioned == y.partitioned;
  }
};

struct FaultPlan {
  std::vector<GrayFault> gray_faults;
  std::vector<LinkFault> link_faults;
  std::vector<NodeEvent> node_events;
  std::vector<PartitionEvent> partition_events;

  bool empty() const {
    return gray_faults.empty() && link_faults.empty() &&
           node_events.empty() && partition_events.empty();
  }

  /// True if any link fault can ever drop/duplicate/reorder/delay a
  /// message. Decides whether the network engages fault sampling and
  /// whether auto-mode reliable delivery turns on; a plan of timed
  /// crash/partition events alone keeps the message path untouched.
  bool HasMessageFaults() const {
    for (const LinkFault& f : link_faults) {
      if (f.HasEffect()) return true;
    }
    return false;
  }

  /// True if any effective link fault is still active after `t` — i.e. the
  /// message-fault plan has no quiet tail from `t` onward.
  bool HasMessageFaultsActiveAfter(SimTime t) const {
    for (const LinkFault& f : link_faults) {
      if (f.HasEffect() && f.active_until > t) return true;
    }
    return false;
  }

  /// True if the plan contains any gray (slow-but-alive) degradation.
  /// Deliberately NOT part of HasMessageFaults(): gray faults are
  /// deterministic, engage no fault RNG, and must not flip auto-mode
  /// reliable delivery on.
  bool HasGrayFaults() const { return !gray_faults.empty(); }

  /// True if any gray fault acts on the message path (slow link or
  /// asymmetric partition, as opposed to node stalls); decides whether the
  /// network exports its gray counters.
  bool HasGrayLinkFaults() const {
    for (const GrayFault& g : gray_faults) {
      if (g.IsLinkKind()) return true;
    }
    return false;
  }

  /// Range-checks every entry against a deployment of `num_datacenters`:
  /// probabilities in [0, 1], windows/durations non-negative, node and
  /// link indices in range, no self-links, crisp messages for each.
  Status Validate(int num_datacenters) const;

  // --- Builders (all-link faults active forever unless windowed) ---------
  FaultPlan& WithLoss(double p) {
    LinkFault f;
    f.loss = p;
    link_faults.push_back(f);
    return *this;
  }
  FaultPlan& WithDuplication(double p) {
    LinkFault f;
    f.duplicate = p;
    link_faults.push_back(f);
    return *this;
  }
  FaultPlan& AddLinkFault(LinkFault f) {
    link_faults.push_back(f);
    return *this;
  }
  FaultPlan& AddCrash(SimTime at, int node) {
    node_events.push_back(NodeEvent{at, node, false});
    return *this;
  }
  FaultPlan& AddRecover(SimTime at, int node) {
    node_events.push_back(NodeEvent{at, node, true});
    return *this;
  }
  FaultPlan& AddPartition(SimTime at, int a, int b) {
    partition_events.push_back(PartitionEvent{at, a, b, true});
    return *this;
  }
  FaultPlan& AddHeal(SimTime at, int a, int b) {
    partition_events.push_back(PartitionEvent{at, a, b, false});
    return *this;
  }
  FaultPlan& AddSlowLink(SimTime from, SimTime until, int a, int b,
                         double factor, Duration extra_delay = 0) {
    GrayFault g;
    g.kind = GrayFaultKind::kSlowLink;
    g.a = a;
    g.b = b;
    g.slow_factor = factor;
    g.extra_delay = extra_delay;
    g.active_from = from;
    g.active_until = until;
    gray_faults.push_back(g);
    return *this;
  }
  FaultPlan& AddAsymPartition(SimTime from, SimTime until, int a, int b) {
    GrayFault g;
    g.kind = GrayFaultKind::kAsymPartition;
    g.a = a;
    g.b = b;
    g.active_from = from;
    g.active_until = until;
    gray_faults.push_back(g);
    return *this;
  }
  FaultPlan& AddProcessStall(SimTime from, SimTime until, int node) {
    GrayFault g;
    g.kind = GrayFaultKind::kProcessStall;
    g.a = node;
    g.active_from = from;
    g.active_until = until;
    gray_faults.push_back(g);
    return *this;
  }
  FaultPlan& AddFsyncStall(SimTime from, SimTime until, int node,
                           Duration per_record) {
    GrayFault g;
    g.kind = GrayFaultKind::kFsyncStall;
    g.a = node;
    g.extra_delay = per_record;
    g.active_from = from;
    g.active_until = until;
    gray_faults.push_back(g);
    return *this;
  }

  /// Deterministic JSON: stable alphabetical keys, empty sections omitted.
  /// An empty plan renders as "{}".
  std::string ToJson() const;

  /// Parses ToJson() output or hand-written plans. Unknown keys are an
  /// error. Use Validate() before running.
  static Result<FaultPlan> FromJson(const std::string& text);
  /// Same, from an already parsed JSON object (for embedding in specs).
  static Result<FaultPlan> FromJsonValue(const json::Value& root);

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.gray_faults == b.gray_faults && a.link_faults == b.link_faults &&
           a.node_events == b.node_events &&
           a.partition_events == b.partition_events;
  }
};

}  // namespace helios::sim

#endif  // HELIOS_SIM_FAULT_PLAN_H_
