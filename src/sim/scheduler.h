// Discrete-event scheduler: the heart of the deterministic simulation
// substrate that stands in for the paper's five-datacenter AWS deployment.

#ifndef HELIOS_SIM_SCHEDULER_H_
#define HELIOS_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace helios::sim {

/// Global simulated ("true") time in microseconds. Individual datacenters
/// observe it through their own, possibly skewed, `Clock`.
using SimTime = int64_t;

/// Single-threaded discrete-event scheduler.
///
/// Events fire in (time, insertion-sequence) order, so simultaneous events
/// run in the order they were scheduled — the whole simulation is
/// deterministic given deterministic callbacks.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Valid inside callbacks and between runs.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (clamped to Now() if in the past).
  void At(SimTime t, Callback cb);

  /// Schedules `cb` `delay` from now (negative delays clamp to now).
  void After(Duration delay, Callback cb);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= `t`, then sets Now() to `t`.
  /// Returns the number of events processed by this call.
  size_t RunUntil(SimTime t);

  /// Runs at most one event; returns false if the queue was empty.
  bool Step();

  bool empty() const { return queue_.empty(); }

  /// Time of the earliest pending event, or -1 if none. (Used by the
  /// real-time driver to size its sleeps.)
  SimTime NextEventTime() const {
    return queue_.empty() ? -1 : queue_.top().time;
  }
  size_t pending() const { return queue_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Dispatch(Event e);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace helios::sim

#endif  // HELIOS_SIM_SCHEDULER_H_
