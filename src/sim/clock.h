// Per-datacenter loosely synchronized clocks.
//
// Helios requires no clock synchronization for correctness, but its
// performance depends on the degree of synchronization (paper Section A.1,
// Figure 5). The `Clock` lets experiments inject a fixed offset (and an
// optional drift rate) per datacenter, reproducing the paper's "+100ms at
// Virginia" style scenarios.

#ifndef HELIOS_SIM_CLOCK_H_
#define HELIOS_SIM_CLOCK_H_

#include "common/types.h"
#include "sim/scheduler.h"

namespace helios::sim {

/// A datacenter-local clock derived from the simulated true time.
///
/// `Now()` returns true_time + offset + drift*true_time. `NowUnique()`
/// additionally guarantees strictly increasing readings, which the
/// replicated log requires for per-origin record ordering.
class Clock {
 public:
  /// `scheduler` must outlive the clock.
  explicit Clock(const Scheduler* scheduler, Duration offset = 0,
                 double drift_ppm = 0.0)
      : scheduler_(scheduler), offset_(offset), drift_ppm_(drift_ppm) {}

  /// Current local-clock reading.
  Timestamp Now() const {
    const SimTime t = scheduler_->Now();
    const Timestamp drift =
        static_cast<Timestamp>(drift_ppm_ * 1e-6 * static_cast<double>(t));
    return t + offset_ + drift;
  }

  /// Strictly increasing local-clock reading: max(Now(), last + 1).
  Timestamp NowUnique() {
    Timestamp t = Now();
    if (t <= last_unique_) t = last_unique_ + 1;
    last_unique_ = t;
    return t;
  }

  /// Raises the unique-timestamp floor so future NowUnique() readings
  /// exceed `ts` — used on recovery so a restarted node never reuses a
  /// timestamp it already persisted.
  void AdvanceTo(Timestamp ts) {
    if (ts > last_unique_) last_unique_ = ts;
  }

  /// The unique-timestamp floor: every future NowUnique() reading is
  /// strictly greater. Recovery asserts this exceeds all persisted
  /// timestamps.
  Timestamp floor() const { return last_unique_; }

  /// Manual offset adjustment, e.g. to emulate an NTP step or the paper's
  /// skew-injection experiments.
  void set_offset(Duration offset) { offset_ = offset; }
  Duration offset() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }

 private:
  const Scheduler* scheduler_;
  Duration offset_;
  double drift_ppm_;
  Timestamp last_unique_ = kMinTimestamp;
};

}  // namespace helios::sim

#endif  // HELIOS_SIM_CLOCK_H_
