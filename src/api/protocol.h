// The client-facing API every replication protocol in this repository
// implements (Helios and all three baselines of Section 5.2), so the
// T-YCSB workload driver and the experiment harness are protocol-agnostic.
//
// Per the paper's system model: clients perform reads first (through
// `ClientRead`, whose answer carries the version timestamp), buffer writes,
// then issue one commit request carrying the read set with version
// timestamps plus the write set. The commit latency the harness reports is
// the client-observed time from `ClientCommit` to its callback.

#ifndef HELIOS_API_PROTOCOL_H_
#define HELIOS_API_PROTOCOL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "store/mv_store.h"
#include "txn/transaction.h"

namespace helios::obs {
class TraceRecorder;
class MetricsRegistry;
}  // namespace helios::obs

namespace helios::sim {
class ReliableMesh;
}  // namespace helios::sim

namespace helios::wal {
class MemoryWal;
}  // namespace helios::wal

namespace helios {

/// Decision returned to a client for a commit request.
struct CommitOutcome {
  TxnId id;
  bool committed = false;
  /// Short machine-parsable reason for aborts, e.g. "conflict:pool".
  std::string abort_reason;
};

using ReadCallback = std::function<void(Result<VersionedValue>)>;
using CommitCallback = std::function<void(const CommitOutcome&)>;
using ReadOnlyCallback =
    std::function<void(std::vector<Result<VersionedValue>>)>;

/// Crash-recovery progress, accumulated across every restart in the run
/// (restarted replica objects do not survive their next crash, so the
/// cluster owns the running totals). Every protocol exports these as
/// `recovery.*` counters when nonzero.
struct RecoveryStats {
  uint64_t recoveries = 0;
  uint64_t records_replayed = 0;  ///< WAL records rebuilt on restart.
  uint64_t catchup_records = 0;   ///< Records pulled from peers post-restore.
  uint64_t duration_us = 0;       ///< Total restore -> caught-up time.
};

/// A running deployment of one protocol across the simulated datacenters.
class ProtocolCluster {
 public:
  virtual ~ProtocolCluster() = default;

  /// Begins background activity (log propagation, leases, ...). Call once
  /// before submitting client work.
  virtual void Start() = 0;

  /// Installs the same initial value at every replica, outside the
  /// protocol (experiment setup). Call before Start, loading keys in the
  /// same order across replicas.
  virtual void LoadInitialAll(const Key& key, const Value& value) = 0;

  /// A client homed at `client_dc` reads `key`. The callback runs at the
  /// client, after client-to-datacenter link latency, with the value and
  /// version information needed to build the transaction's read set.
  virtual void ClientRead(DcId client_dc, const Key& key,
                          ReadCallback done) = 0;

  /// A client homed at `client_dc` requests to commit. `done` runs at the
  /// client when the decision arrives.
  virtual void ClientCommit(DcId client_dc, std::vector<ReadEntry> reads,
                            std::vector<WriteEntry> writes,
                            CommitCallback done) = 0;

  /// Read-only snapshot transaction (Appendix B). Protocols without the
  /// optimization may implement it as individual reads.
  virtual void ClientReadOnly(DcId client_dc, std::vector<Key> keys,
                              ReadOnlyCallback done) = 0;

  // --- Transaction-scoped operations -------------------------------------
  //
  // Optimistic protocols (Helios, Message Futures) need no transaction
  // context before the commit request, so the defaults below forward to
  // the plain calls. Lock-based protocols (Replicated Commit, 2PC/Paxos)
  // override them: their reads acquire locks under the transaction's
  // identity and hold them until the decision.

  /// Allocates a client-side transaction identity.
  virtual TxnId BeginTxn(DcId client_dc);

  /// Reads `key` within transaction `txn`.
  virtual void TxnRead(DcId client_dc, const TxnId& txn, const Key& key,
                       ReadCallback done) {
    (void)txn;
    ClientRead(client_dc, key, done);
  }

  /// Requests commit of transaction `txn`.
  virtual void TxnCommit(DcId client_dc, const TxnId& txn,
                         std::vector<ReadEntry> reads,
                         std::vector<WriteEntry> writes, CommitCallback done) {
    (void)txn;
    ClientCommit(client_dc, std::move(reads), std::move(writes),
                 std::move(done));
  }

  /// Abandons a transaction after a failed read (releases any locks).
  virtual void TxnAbandon(DcId client_dc, const TxnId& txn) {
    (void)client_dc;
    (void)txn;
  }

  virtual std::string name() const = 0;
  virtual int num_datacenters() const = 0;

  // --- Observability (src/obs) -------------------------------------------

  /// Installs a lifecycle trace recorder and metrics registry on every
  /// component of the deployment. Either pointer may be null; protocols
  /// without instrumentation may ignore the call (default: no-op). Call
  /// before Start().
  virtual void SetObservability(obs::TraceRecorder* /*trace*/,
                                obs::MetricsRegistry* /*metrics*/) {}

  /// Dumps end-of-run protocol-level counters (commits, aborts, pool
  /// sizes, ...) into `registry`. Default: no-op.
  virtual void ExportMetrics(obs::MetricsRegistry* /*registry*/) const {}

  // --- Chaos harness (src/sim fault injection) ----------------------------

  /// Routes all inter-datacenter protocol traffic through `mesh`, the
  /// reliable session layer the chaos harness puts under every protocol
  /// when the network can lose or duplicate messages. Null (the default
  /// state) keeps direct network sends. Call before Start(). Default
  /// implementation: no-op, for deployments without a WAN.
  virtual void SetReliableMesh(sim::ReliableMesh* /*mesh*/) {}

  /// Marks datacenter `dc`'s server process down or up without touching
  /// the network; the harness pairs this with Network::CrashNode /
  /// RecoverNode when executing a FaultPlan's node events. Default: no-op
  /// (the network-level drop already models the outage).
  virtual void SetDatacenterDown(DcId /*dc*/, bool /*down*/) {}

  /// Gray faults (FaultPlan's process-stall / fsync-stall kinds): freezes
  /// datacenter `dc`'s server process for `pause` without killing it (GC
  /// pause, VM migration, SIGSTOP) — the process stays up but does no work
  /// until the pause elapses. Default: no-op for deployments that cannot
  /// model it (the fault then simply has no effect on that protocol).
  virtual void InjectStall(DcId /*dc*/, Duration /*pause*/) {}

  /// Makes datacenter `dc`'s record persistence cost an extra `per_record`
  /// of service time for `window` (a sick disk). Default: no-op.
  virtual void InjectFsyncStall(DcId /*dc*/, Duration /*per_record*/,
                                Duration /*window*/) {}

  // --- Checker observation points (src/check) ------------------------------
  //
  // Read-only end-of-run surfaces the invariant oracles inspect: the
  // per-datacenter durable journal, the latest version of every key in the
  // replica's store, the down flag, and the accumulated recovery totals.
  // Defaults are "nothing to observe" so deployments without the surfaces
  // (e.g. the live transport cluster) need no changes.

  /// Datacenter `dc`'s durable in-memory WAL journal, or null when the
  /// deployment has none. The journal outlives crashes, so it is valid
  /// even for a datacenter that is down at the end of the run.
  virtual const wal::MemoryWal* wal_journal(DcId /*dc*/) const {
    return nullptr;
  }

  /// Visits the latest installed version of every key in `dc`'s store.
  /// Default: no-op (no store surface).
  virtual void SnapshotStore(
      DcId /*dc*/,
      const std::function<void(const Key&, const VersionedValue&)>& /*fn*/)
      const {}

  /// Whether `dc` is crashed (down) right now.
  virtual bool datacenter_down(DcId /*dc*/) const { return false; }

  /// Copy of the accumulated crash-recovery totals.
  virtual RecoveryStats recovery_snapshot() const { return {}; }

 private:
  std::vector<uint64_t> client_txn_seq_;  // Lazily sized in BeginTxn.
};

inline TxnId ProtocolCluster::BeginTxn(DcId client_dc) {
  if (static_cast<size_t>(client_dc) >= client_txn_seq_.size()) {
    client_txn_seq_.resize(static_cast<size_t>(client_dc) + 1, 0);
  }
  return TxnId{client_dc, ++client_txn_seq_[static_cast<size_t>(client_dc)]};
}

}  // namespace helios

#endif  // HELIOS_API_PROTOCOL_H_
