// Durability sink abstraction over the write-ahead log.
//
// A `WalSink` receives every replicated-log record a node appends or
// ingests plus periodic timetable snapshots. Two implementations exist:
//
//  * `MemoryWal` (here, header-only): the simulator's "disk". It lives
//    outside the node object, so it survives the amnesia restart that a
//    fault-plan `crash` event performs — crash wipes the node, recovery
//    replays `contents()` through `HeliosNode::Restore()`.
//  * `wal::WalWriter` (wal.h): the file-backed WAL used by the live
//    `transport::Datacenter` deployment, with CRC-framed entries and
//    torn-tail detection.
//
// The sink is deliberately free of simulation side effects: appending
// never schedules events, draws randomness, or touches counters that are
// exported by default, so wiring it unconditionally keeps crash-free runs
// bit-identical.

#ifndef HELIOS_WAL_WAL_SINK_H_
#define HELIOS_WAL_WAL_SINK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rdict/record.h"
#include "rdict/timetable.h"

namespace helios::wal {

/// Everything a WAL replay recovers. (Shared by `MemoryWal` and the
/// file-backed `ReplayWal()` in wal.h.)
struct WalContents {
  std::vector<rdict::LogRecord> records;  ///< In append order.
  /// Latest timetable snapshot, if any was persisted.
  bool has_timetable = false;
  rdict::Timetable timetable{1};
  /// True if a torn/corrupted tail was detected and discarded.
  bool truncated_tail = false;
  uint64_t entries = 0;
};

/// Where a node's durable state goes. Not thread-safe; owned by the
/// single-threaded event loop that owns the node.
class WalSink {
 public:
  virtual ~WalSink() = default;

  /// Persists one replicated-log record (any origin).
  virtual Status AppendRecord(const rdict::LogRecord& record) = 0;

  /// Persists a timetable snapshot (checkpointing knowledge so recovery
  /// does not have to re-learn it record by record).
  virtual Status AppendTimetable(const rdict::Timetable& table) = 0;

  virtual uint64_t entries_appended() const = 0;
};

/// In-memory WAL: what a per-datacenter disk would hold, kept outside the
/// node object so it survives node destruction. Only the latest timetable
/// snapshot is retained (a file WAL keeps them all but replay also only
/// uses the last one).
class MemoryWal : public WalSink {
 public:
  Status AppendRecord(const rdict::LogRecord& record) override {
    contents_.records.push_back(record);
    ++contents_.entries;
    return Status::Ok();
  }

  Status AppendTimetable(const rdict::Timetable& table) override {
    contents_.has_timetable = true;
    contents_.timetable = table;
    ++contents_.entries;
    return Status::Ok();
  }

  uint64_t entries_appended() const override { return contents_.entries; }

  const WalContents& contents() const { return contents_; }

  /// Drops everything — models losing the disk itself, not a restart.
  void Reset() { contents_ = WalContents{}; }

 private:
  WalContents contents_;
};

}  // namespace helios::wal

#endif  // HELIOS_WAL_WAL_SINK_H_
