// FileWal: the production file-backed WAL for live deployments (heliosd,
// transport::LiveDatacenter).
//
// Builds on the CRC32-framed entry format of wal.h (one `magic | type |
// len | payload | crc32` frame per record — the files are byte-compatible
// with WalWriter's) and adds the two things a daemon needs that the
// simulator's sinks don't:
//
//  * A configurable fsync policy. `kEveryRecord` fsyncs after each append
//    (a record is durable before the client ever sees "committed";
//    ~one disk flush per commit). `kGroupCommit` flushes to the OS on
//    every append but fsyncs at most once per `group_commit_interval`,
//    batching many commits into one flush — bounded-loss durability at a
//    fraction of the cost. `kOsBuffered` never fsyncs (flush-to-OS only);
//    data survives process death but not host death.
//
//  * Crash-consistent recovery. `RecoverFileWal` distinguishes the two
//    corruption shapes a real disk produces: a torn tail (the process died
//    mid-append, leaving a partial final frame) is truncated off the file
//    and replay succeeds with what survived, while a corrupt frame in the
//    *middle* of otherwise valid data (bit rot, a bad sector) is a crisp
//    error naming the byte offset — silently dropping interior history
//    would desynchronize the replica from what its peers already
//    acknowledged.

#ifndef HELIOS_WAL_FILE_WAL_H_
#define HELIOS_WAL_FILE_WAL_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "wal/wal.h"
#include "wal/wal_sink.h"

namespace helios::wal {

enum class SyncPolicy : uint8_t {
  kOsBuffered = 0,   ///< fflush only; no fsync (fastest, least durable).
  kEveryRecord = 1,  ///< fsync after every append.
  kGroupCommit = 2,  ///< fsync at most once per group_commit_interval.
};

struct FileWalOptions {
  SyncPolicy policy = SyncPolicy::kGroupCommit;
  /// Maximum time appended records may sit un-fsynced under kGroupCommit.
  std::chrono::microseconds group_commit_interval{5000};
};

/// Parses "os"/"every"/"group" (the cluster-JSON spellings).
Result<SyncPolicy> ParseSyncPolicy(const std::string& name);
const char* SyncPolicyName(SyncPolicy policy);

/// File-backed WalSink with a durability policy. Not thread-safe; owned by
/// the datacenter's event loop like every other sink.
class FileWal : public WalSink {
 public:
  FileWal() = default;
  ~FileWal() override;
  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  /// Opens (creating or appending to) the WAL at `path`. Run
  /// `RecoverFileWal` first on restart: Open appends blindly and a torn
  /// tail left in place would corrupt the frame stream.
  Status Open(const std::string& path, const FileWalOptions& options = {});

  Status AppendRecord(const rdict::LogRecord& record) override;
  Status AppendTimetable(const rdict::Timetable& table) override;

  /// Forces everything appended so far to disk regardless of policy
  /// (clean shutdown, pre-dump barrier).
  Status SyncToDisk();

  void Close();
  bool is_open() const { return writer_.is_open(); }
  const FileWalOptions& options() const { return options_; }
  uint64_t entries_appended() const override {
    return writer_.entries_appended();
  }
  uint64_t bytes_written() const { return writer_.bytes_written(); }
  /// fsync() calls actually issued (group commit batches many appends
  /// into one).
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  /// Applies the policy after one append.
  Status AfterAppend();

  WalWriter writer_;
  FileWalOptions options_;
  uint64_t fsyncs_ = 0;
  bool dirty_ = false;  ///< Appends since the last fsync.
  std::chrono::steady_clock::time_point last_fsync_{};
};

/// What recovery found at `path`, beyond the replayed contents.
struct FileWalRecovery {
  WalContents contents;
  /// Bytes of valid frames kept (== file size after truncation).
  uint64_t valid_bytes = 0;
  /// Bytes of torn tail discarded (0 when the file was clean).
  uint64_t truncated_bytes = 0;
};

/// Replays and repairs the WAL at `path`. A missing file is a fresh node
/// (empty contents). A partial final frame — the file ends before the
/// frame's declared payload+CRC — is a torn tail: it is physically
/// truncated off the file so a subsequent FileWal::Open appends cleanly.
/// A complete frame that fails its CRC, carries a bad magic, or does not
/// decode is interior corruption: an error naming the byte offset, and
/// the file is left untouched for forensics.
Result<FileWalRecovery> RecoverFileWal(const std::string& path);

}  // namespace helios::wal

#endif  // HELIOS_WAL_FILE_WAL_H_
