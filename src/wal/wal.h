// Write-ahead log: durable, append-only persistence for a datacenter's
// share of the replicated log, enabling restart recovery ("until the
// datacenter is back up again and Helios is recovered", Section 4.4).
//
// Every appended entry is framed as
//     u32 magic | u32 payload_len | payload | u32 crc32(payload)
// so a torn tail (crash mid-write) is detected and truncated on replay
// instead of corrupting recovery. Payloads are wire-serialized LogRecords
// plus periodic timetable snapshots.
//
// The recovery contract: replaying a WAL reproduces exactly the sequence
// of records the node had locally appended or ingested, in order, plus the
// latest persisted timetable — enough to rebuild the ReplicatedLog, replay
// committed write sets into the store, and rejoin the gossip without ever
// reusing a timestamp.

#ifndef HELIOS_WAL_WAL_H_
#define HELIOS_WAL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdict/record.h"
#include "rdict/timetable.h"
#include "wal/wal_sink.h"
#include "wire/buffer.h"
#include "wire/codec.h"

namespace helios::wal {

inline constexpr uint32_t kEntryMagic = 0x57414C31;  // "WAL1"

enum class EntryType : uint8_t {
  kLogRecord = 1,
  kTimetable = 2,
};

/// Append-only file-backed writer. Not thread-safe; owned by the node's
/// event loop.
class WalWriter : public WalSink {
 public:
  WalWriter() = default;
  ~WalWriter() override;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating or appending to) the file at `path`.
  Status Open(const std::string& path);

  /// Appends one replicated-log record.
  Status AppendRecord(const rdict::LogRecord& record) override;

  /// Appends a timetable snapshot (checkpointing knowledge so recovery
  /// does not have to re-learn it from peers).
  Status AppendTimetable(const rdict::Timetable& table) override;

  /// Flushes buffered writes to the OS (and optionally fsyncs).
  Status Sync(bool fsync_to_disk = false);

  void Close();
  bool is_open() const { return file_ != nullptr; }
  uint64_t entries_appended() const override { return entries_appended_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  using EncodePayloadFn = std::function<void(wire::Writer*)>;

  /// Frames one entry into the reused scratch buffer (payload encoded in
  /// place; length patched after the fact) and writes it with one fwrite.
  Status AppendEntry(EntryType type, const EncodePayloadFn& encode);

  std::FILE* file_ = nullptr;
  wire::Buffer scratch_;
  uint64_t entries_appended_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Replays the WAL at `path`. A missing file yields empty contents (a
/// fresh node). A corrupted or torn tail stops the replay at the last
/// valid entry and reports it via `truncated_tail`.
Result<WalContents> ReplayWal(const std::string& path);

}  // namespace helios::wal

#endif  // HELIOS_WAL_WAL_H_
