#include "wal/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "wire/codec.h"
#include "wire/serialization.h"

namespace helios::wal {

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL " + path + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status WalWriter::AppendEntry(EntryType type, const EncodePayloadFn& encode) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  // Single-buffer framing: the payload is encoded in place after a
  // fixed-width length placeholder that is patched once the size is
  // known, so one reused buffer and one fwrite cover the whole entry.
  scratch_.Clear();
  wire::Writer w(&scratch_);
  w.PutFixed32(kEntryMagic);
  w.PutU8(static_cast<uint8_t>(type));
  const size_t len_at = w.offset();
  w.PutFixed32(0);  // Payload length, patched below.
  const size_t payload_at = w.offset();
  encode(&w);
  const size_t payload_len = w.offset() - payload_at;
  w.PatchFixed32(len_at, static_cast<uint32_t>(payload_len));
  w.PutFixed32(wire::Crc32(scratch_.data() + payload_at, payload_len));
  if (std::fwrite(scratch_.data(), 1, scratch_.size(), file_) !=
      scratch_.size()) {
    return Status::Internal("WAL write failed");
  }
  ++entries_appended_;
  bytes_written_ += scratch_.size();
  return Status::Ok();
}

Status WalWriter::AppendRecord(const rdict::LogRecord& record) {
  return AppendEntry(EntryType::kLogRecord, [&record](wire::Writer* w) {
    wire::EncodeLogRecord(record, w);
  });
}

Status WalWriter::AppendTimetable(const rdict::Timetable& table) {
  return AppendEntry(EntryType::kTimetable, [&table](wire::Writer* w) {
    wire::EncodeTimetable(table, w);
  });
}

Status WalWriter::Sync(bool fsync_to_disk) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (std::fflush(file_) != 0) return Status::Internal("WAL flush failed");
  if (fsync_to_disk && ::fsync(::fileno(file_)) != 0) {
    return Status::Internal("WAL fsync failed");
  }
  return Status::Ok();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<WalContents> ReplayWal(const std::string& path) {
  WalContents out;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return out;  // Fresh node: nothing to replay.

  std::vector<uint8_t> bytes;
  {
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    if (size > 0) {
      bytes.resize(static_cast<size_t>(size));
      if (std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
        std::fclose(file);
        return Status::Internal("WAL read failed");
      }
    }
    std::fclose(file);
  }

  // Walk frames with an absolute cursor; any parse/CRC failure is treated
  // as a torn tail and replay stops at the last valid entry.
  size_t off = 0;
  const size_t kHeader = 4 + 1 + 4;  // magic + type + length.
  while (off < bytes.size()) {
    if (bytes.size() - off < kHeader) {
      out.truncated_tail = true;
      break;
    }
    wire::Decoder head(bytes.data() + off, kHeader);
    uint32_t magic = 0;
    uint8_t type = 0;
    uint32_t len = 0;
    (void)head.GetFixed32(&magic);
    (void)head.GetU8(&type);
    (void)head.GetFixed32(&len);
    if (magic != kEntryMagic ||
        bytes.size() - off - kHeader < static_cast<size_t>(len) + 4) {
      out.truncated_tail = true;
      break;
    }
    const uint8_t* payload = bytes.data() + off + kHeader;
    wire::Decoder crc_dec(payload + len, 4);
    uint32_t stored = 0;
    (void)crc_dec.GetFixed32(&stored);
    if (stored != wire::Crc32(payload, len)) {
      out.truncated_tail = true;
      break;
    }

    wire::Decoder entry(payload, len);
    if (type == static_cast<uint8_t>(EntryType::kLogRecord)) {
      rdict::LogRecord rec;
      if (!wire::DecodeLogRecord(&entry, &rec).ok()) {
        out.truncated_tail = true;
        break;
      }
      out.records.push_back(std::move(rec));
    } else if (type == static_cast<uint8_t>(EntryType::kTimetable)) {
      rdict::Timetable table(1);
      if (!wire::DecodeTimetable(&entry, &table).ok()) {
        out.truncated_tail = true;
        break;
      }
      out.timetable = table;
      out.has_timetable = true;
    } else {
      out.truncated_tail = true;
      break;
    }
    ++out.entries;
    off += kHeader + len + 4;
  }
  return out;
}

}  // namespace helios::wal
