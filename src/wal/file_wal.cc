#include "wal/file_wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "wire/codec.h"
#include "wire/serialization.h"

namespace helios::wal {

Result<SyncPolicy> ParseSyncPolicy(const std::string& name) {
  if (name == "os") return SyncPolicy::kOsBuffered;
  if (name == "every") return SyncPolicy::kEveryRecord;
  if (name == "group") return SyncPolicy::kGroupCommit;
  return Status::InvalidArgument("unknown sync policy '" + name +
                                 "' (want os|every|group)");
}

const char* SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kOsBuffered:
      return "os";
    case SyncPolicy::kEveryRecord:
      return "every";
    case SyncPolicy::kGroupCommit:
      return "group";
  }
  return "?";
}

FileWal::~FileWal() { Close(); }

Status FileWal::Open(const std::string& path, const FileWalOptions& options) {
  options_ = options;
  dirty_ = false;
  last_fsync_ = std::chrono::steady_clock::now();
  return writer_.Open(path);
}

Status FileWal::AfterAppend() {
  switch (options_.policy) {
    case SyncPolicy::kEveryRecord: {
      Status s = writer_.Sync(/*fsync_to_disk=*/true);
      if (s.ok()) ++fsyncs_;
      return s;
    }
    case SyncPolicy::kGroupCommit: {
      dirty_ = true;
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_ < options_.group_commit_interval) {
        // Flush to the OS so the bytes survive *process* death; the disk
        // flush waits for the group-commit tick.
        return writer_.Sync(/*fsync_to_disk=*/false);
      }
      Status s = writer_.Sync(/*fsync_to_disk=*/true);
      if (s.ok()) {
        ++fsyncs_;
        dirty_ = false;
        last_fsync_ = now;
      }
      return s;
    }
    case SyncPolicy::kOsBuffered:
      return writer_.Sync(/*fsync_to_disk=*/false);
  }
  return Status::Internal("unreachable");
}

Status FileWal::AppendRecord(const rdict::LogRecord& record) {
  Status s = writer_.AppendRecord(record);
  if (!s.ok()) return s;
  return AfterAppend();
}

Status FileWal::AppendTimetable(const rdict::Timetable& table) {
  Status s = writer_.AppendTimetable(table);
  if (!s.ok()) return s;
  return AfterAppend();
}

Status FileWal::SyncToDisk() {
  if (!writer_.is_open()) return Status::FailedPrecondition("WAL not open");
  Status s = writer_.Sync(/*fsync_to_disk=*/true);
  if (s.ok()) {
    ++fsyncs_;
    dirty_ = false;
    last_fsync_ = std::chrono::steady_clock::now();
  }
  return s;
}

void FileWal::Close() {
  if (writer_.is_open() && dirty_) (void)SyncToDisk();
  writer_.Close();
}

namespace {

Status CorruptAt(size_t offset, const char* what) {
  return Status::Internal("WAL corrupt at offset " + std::to_string(offset) +
                          ": " + what);
}

}  // namespace

Result<FileWalRecovery> RecoverFileWal(const std::string& path) {
  FileWalRecovery out;
  std::vector<uint8_t> bytes;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return out;  // Fresh node: nothing to replay.
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    if (size > 0) {
      bytes.resize(static_cast<size_t>(size));
      if (std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
        std::fclose(file);
        return Status::Internal("WAL read failed: " + path);
      }
    }
    std::fclose(file);
  }

  // Walk the frame stream. A frame whose declared extent runs past EOF is
  // a torn tail (the append that died with the process); any defect inside
  // a frame that is fully present is interior corruption and fails
  // recovery outright — truncating it would silently drop acknowledged
  // history.
  size_t off = 0;
  const size_t kHeader = 4 + 1 + 4;  // magic + type + length.
  while (off < bytes.size()) {
    if (bytes.size() - off < kHeader) break;  // Torn: partial header.
    wire::Decoder head(bytes.data() + off, kHeader);
    uint32_t magic = 0;
    uint8_t type = 0;
    uint32_t len = 0;
    (void)head.GetFixed32(&magic);
    (void)head.GetU8(&type);
    (void)head.GetFixed32(&len);
    if (magic != kEntryMagic) {
      // A full header's worth of bytes with the wrong magic cannot be a
      // partial append of a valid frame: frames are written front-first,
      // so a torn frame keeps its magic prefix.
      return CorruptAt(off, "bad entry magic");
    }
    if (bytes.size() - off - kHeader < static_cast<size_t>(len) + 4) {
      break;  // Torn: payload + CRC run past EOF.
    }
    const uint8_t* payload = bytes.data() + off + kHeader;
    wire::Decoder crc_dec(payload + len, 4);
    uint32_t stored = 0;
    (void)crc_dec.GetFixed32(&stored);
    if (stored != wire::Crc32(payload, len)) {
      return CorruptAt(off, "CRC mismatch");
    }

    wire::Decoder entry(payload, len);
    if (type == static_cast<uint8_t>(EntryType::kLogRecord)) {
      rdict::LogRecord rec;
      if (!wire::DecodeLogRecord(&entry, &rec).ok()) {
        return CorruptAt(off, "undecodable log record");
      }
      out.contents.records.push_back(std::move(rec));
    } else if (type == static_cast<uint8_t>(EntryType::kTimetable)) {
      rdict::Timetable table(1);
      if (!wire::DecodeTimetable(&entry, &table).ok()) {
        return CorruptAt(off, "undecodable timetable");
      }
      out.contents.timetable = table;
      out.contents.has_timetable = true;
    } else {
      return CorruptAt(off, "unknown entry type");
    }
    ++out.contents.entries;
    off += kHeader + len + 4;
  }

  out.valid_bytes = off;
  if (off < bytes.size()) {
    // Torn tail: chop the partial frame so the next Open() appends onto a
    // clean frame boundary.
    out.contents.truncated_tail = true;
    out.truncated_bytes = bytes.size() - off;
    if (::truncate(path.c_str(), static_cast<off_t>(off)) != 0) {
      return Status::Internal("WAL torn-tail truncate failed: " + path +
                              ": " + std::strerror(errno));
    }
  }
  return out;
}

}  // namespace helios::wal
