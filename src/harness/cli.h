// Shared CLI surface for the tools and benches (helios_sim, helios_fuzz,
// bench_perf, the figure benches): one place for the flag names every tool
// spells the same way (--jobs, --json_out, --seeds, --protocols), the CSV
// list parsers each binary used to hand-roll, and the common
// parse/help/exit choreography.
//
// Exit-code contract (uniform across tools):
//   0  success (including --help)
//   1  runtime failure: a run/sweep failed, an invariant was violated, or
//      an output file could not be written
//   2  usage error: unknown or malformed flags, unparseable list entries,
//      invalid spec inputs
//
// List parsing is strict: every entry must consume fully ("1,2x,3" is an
// error, not a silent 2) — CLI input is audited the same way spec JSON is.

#ifndef HELIOS_HARNESS_CLI_H_
#define HELIOS_HARNESS_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "common/types.h"
#include "harness/experiment.h"

namespace helios::harness::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

/// Splits on commas; no trimming, empty segments preserved ("a,,b" yields
/// three entries). An empty input yields an empty list.
std::vector<std::string> SplitCsv(const std::string& csv);

/// "helios0,mf,2pc" -> protocols. Accepts the same spellings as
/// ParseProtocolToken. Empty input or an unknown token is an error.
Result<std::vector<Protocol>> ParseProtocolList(const std::string& csv);

/// "1,2,3" -> seeds; every entry must be a full unsigned integer.
Result<std::vector<uint64_t>> ParseSeedList(const std::string& csv);

/// "0.01,0.1" -> doubles; every entry must be a full number.
Result<std::vector<double>> ParseDoubleList(const std::string& csv);

/// "100,0,-50" -> per-entry Millis(...) durations (clock-skew vectors).
Result<std::vector<Duration>> ParseMillisList(const std::string& csv);

Result<std::string> ReadWholeFile(const std::string& path);
Status WriteWholeFile(const std::string& path, const std::string& content);

/// Declares the flags every tool shares, with the shared spellings:
///   --jobs      concurrent jobs (default per tool; 0 = one per core)
///   --json_out  deterministic JSON results document
///   --help
void AddCommonFlags(FlagSet* flags, int default_jobs);

/// Parses argv against `flags`. On --help prints usage and exits kExitOk;
/// on a parse error prints the error plus usage and exits kExitUsage.
/// Returns only on a successful parse.
void ParseOrExit(FlagSet* flags, int argc, char** argv);

/// Prints `status` (when not OK) to stderr and returns `exit_code`; sugar
/// for the `if (!s.ok()) { print; return 2; }` ladders in main().
int FailWith(const Status& status, int exit_code);

}  // namespace helios::harness::cli

#endif  // HELIOS_HARNESS_CLI_H_
