// A fixed-size thread pool for independent batch jobs: the fan-out
// substrate under harness::SweepRunner (and, later, any sharded or cached
// job runner). Jobs are opaque closures executed FIFO by a fixed set of
// worker threads; Cancel() drops everything still queued (running jobs
// finish), and Wait() blocks until the pool is drained and idle.
//
// The pool makes no fairness or ordering promise beyond FIFO dispatch.
// Determinism is the *jobs'* responsibility: a job that depends only on
// its own inputs produces the same result whatever thread or order runs
// it, which is exactly the contract SweepRunner builds on.

#ifndef HELIOS_HARNESS_JOB_POOL_H_
#define HELIOS_HARNESS_JOB_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace helios::harness {

/// Clamps a requested thread count to something sane: values <= 0 resolve
/// to the hardware concurrency (at least 1).
int ResolveJobCount(int requested);

class JobPool {
 public:
  /// Spawns `num_threads` workers (resolved through ResolveJobCount).
  explicit JobPool(int num_threads);

  /// Joins all workers. Pending jobs that never started are dropped, so
  /// callers that need completion must Wait() first.
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Enqueues a job. Safe from any thread, including from inside a running
  /// job. Submitting after Cancel() is a no-op.
  void Submit(std::function<void()> job);

  /// Drops every job still queued and marks the pool cancelled. Jobs
  /// already running are not interrupted. Safe from inside a job.
  void Cancel();

  /// Blocks until the queue is empty and no job is running. Jobs submitted
  /// while waiting extend the wait.
  void Wait();

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals workers: work or shutdown.
  std::condition_variable idle_cv_;  ///< Signals Wait(): drained and idle.
  int active_ = 0;                   ///< Jobs currently executing.
  bool shutdown_ = false;
  std::atomic<bool> cancelled_{false};
};

}  // namespace helios::harness

#endif  // HELIOS_HARNESS_JOB_POOL_H_
