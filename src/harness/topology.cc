#include "harness/topology.h"

#include <cassert>

namespace helios::harness {

Topology Table2Topology() {
  Topology t(5);
  t.names = {"V", "O", "C", "I", "S"};
  // Table 2 is read from the upper triangle; where the paper's two
  // directions report slightly different standard deviations, the average
  // is used.
  t.Set(0, 1, 66, 10.5);   // V-O
  t.Set(0, 2, 78, 9.5);    // V-C
  t.Set(0, 3, 84, 8.5);    // V-I
  t.Set(0, 4, 268, 6.5);   // V-S
  t.Set(1, 2, 19, 1.0);    // O-C
  t.Set(1, 3, 175, 7.0);   // O-I
  t.Set(1, 4, 210, 4.2);   // O-S
  t.Set(2, 3, 175, 6.5);   // C-I
  t.Set(2, 4, 182, 6.0);   // C-S
  t.Set(3, 4, 194, 4.0);   // I-S
  return t;
}

Topology PaperExampleTopology() {
  Topology t(3);
  t.names = {"A", "B", "C"};
  t.Set(0, 1, 30, 0);
  t.Set(0, 2, 20, 0);
  t.Set(1, 2, 40, 0);
  return t;
}

Topology UniformTopology(int n, double rtt_ms, double stddev_ms) {
  Topology t(n);
  for (int i = 0; i < n; ++i) t.names[static_cast<size_t>(i)] = "DC" + std::to_string(i);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) t.Set(a, b, rtt_ms, stddev_ms);
  }
  return t;
}

void ConfigureNetwork(const Topology& topology, sim::Network* network) {
  assert(network->size() == topology.size());
  for (int a = 0; a < topology.size(); ++a) {
    for (int b = a + 1; b < topology.size(); ++b) {
      network->SetRtt(a, b,
                      static_cast<Duration>(topology.rtt_ms.Get(a, b) * 1000.0),
                      static_cast<Duration>(
                          topology.rtt_stddev_ms.Get(a, b) * 1000.0));
    }
  }
}

}  // namespace helios::harness
