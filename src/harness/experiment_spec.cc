#include "harness/experiment_spec.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "common/json.h"
#include "core/config_validation.h"

namespace helios::harness {

const char* ProtocolToken(Protocol p) {
  switch (p) {
    case Protocol::kHelios0:
      return "helios0";
    case Protocol::kHelios1:
      return "helios1";
    case Protocol::kHelios2:
      return "helios2";
    case Protocol::kHeliosB:
      return "heliosb";
    case Protocol::kMessageFutures:
      return "mf";
    case Protocol::kReplicatedCommit:
      return "rc";
    case Protocol::kTwoPcPaxos:
      return "2pc";
  }
  return "?";
}

Result<Protocol> ParseProtocolToken(const std::string& token) {
  for (Protocol p :
       {Protocol::kHelios0, Protocol::kHelios1, Protocol::kHelios2,
        Protocol::kHeliosB, Protocol::kMessageFutures,
        Protocol::kReplicatedCommit, Protocol::kTwoPcPaxos}) {
    if (token == ProtocolToken(p) || token == ProtocolName(p)) return p;
  }
  return Status::InvalidArgument(
      "unknown protocol '" + token +
      "' (expected helios0|helios1|helios2|heliosb|mf|rc|2pc)");
}

uint64_t DeriveSeed(uint64_t base_seed, uint64_t index) {
  // splitmix64 of (base + index): decorrelates neighbouring grid entries.
  uint64_t z = base_seed + index * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string ExperimentSpec::DisplayName() const {
  if (!label.empty()) return label;
  return std::string(ProtocolToken(protocol)) + "/c" +
         std::to_string(clients) + "/s" + std::to_string(seed);
}

Topology ExperimentSpec::BuildTopology() const {
  if (topology == "example3") return PaperExampleTopology();
  if (topology == "uniform") {
    return UniformTopology(uniform_dcs, uniform_rtt_ms, uniform_stddev_ms);
  }
  return Table2Topology();
}

Status ExperimentSpec::Validate() const {
  if (topology != "table2" && topology != "example3" &&
      topology != "uniform") {
    return Status::InvalidArgument("unknown topology '" + topology +
                                   "' (expected table2|example3|uniform)");
  }
  if (topology == "uniform") {
    if (uniform_dcs < 2) {
      return Status::InvalidArgument("uniform topology needs >= 2 DCs");
    }
    if (uniform_rtt_ms < 0.0 || uniform_stddev_ms < 0.0) {
      return Status::InvalidArgument(
          "uniform RTT and stddev must be >= 0 ms");
    }
  }
  if (clients <= 0) {
    return Status::InvalidArgument("clients must be positive (got " +
                                   std::to_string(clients) + ")");
  }
  if (measure <= 0) {
    return Status::InvalidArgument("measure window must be positive");
  }
  if (warmup < 0 || drain < 0) {
    return Status::InvalidArgument("warmup and drain must be >= 0");
  }
  if (ops_per_txn <= 0) {
    return Status::InvalidArgument("ops_per_txn must be positive");
  }
  if (num_keys == 0) {
    return Status::InvalidArgument("num_keys must be positive");
  }
  if (static_cast<uint64_t>(ops_per_txn) > num_keys) {
    return Status::InvalidArgument(
        "ops_per_txn exceeds num_keys: transactions need distinct keys");
  }
  if (key_partitions < 1) {
    return Status::InvalidArgument("key_partitions must be >= 1 (got " +
                                   std::to_string(key_partitions) + ")");
  }
  if (static_cast<uint64_t>(ops_per_txn) * static_cast<uint64_t>(key_partitions) >
      num_keys) {
    return Status::InvalidArgument(
        "key_partitions too fine: each of the " +
        std::to_string(key_partitions) + " partitions must hold at least "
        "ops_per_txn distinct keys");
  }
  if (write_fraction < 0.0 || write_fraction > 1.0 ||
      read_only_fraction < 0.0 || read_only_fraction > 1.0) {
    return Status::InvalidArgument(
        "write_fraction and read_only_fraction must be in [0, 1]");
  }
  if (zipf_theta < 0.0 || zipf_theta >= 1.0) {
    return Status::InvalidArgument("zipf_theta must be in [0, 1)");
  }
  if (value_size < 0) {
    return Status::InvalidArgument("value_size must be >= 0");
  }

  const Topology topo = BuildTopology();
  const int n = topo.size();
  if (rtt_estimate_ms.has_value() && rtt_estimate_ms->size() != n) {
    return Status::InvalidArgument(
        "rtt_estimate_ms is " + std::to_string(rtt_estimate_ms->size()) +
        "x" + std::to_string(rtt_estimate_ms->size()) + " but the topology has " +
        std::to_string(n) + " datacenters");
  }
  if (two_pc_coordinator < 0 || two_pc_coordinator >= n) {
    return Status::InvalidArgument("two_pc_coordinator out of range");
  }
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1 (got " +
                                   std::to_string(shards) + ")");
  }
  if (shard_by != "hash" && shard_by != "range") {
    return Status::InvalidArgument("shard_by must be hash|range (got '" +
                                   shard_by + "')");
  }
  if (shards > 1 &&
      (protocol == Protocol::kMessageFutures ||
       protocol == Protocol::kReplicatedCommit ||
       protocol == Protocol::kTwoPcPaxos)) {
    return Status::InvalidArgument(
        "shards > 1 requires a Helios protocol (helios0|helios1|helios2|"
        "heliosb): the cross-shard wait-base coupling leans on Rule 2");
  }
  if (reliable != "auto" && reliable != "on" && reliable != "off") {
    return Status::InvalidArgument("reliable must be auto|on|off (got '" +
                                   reliable + "')");
  }
  if (client_timeout < 0) {
    return Status::InvalidArgument("client_timeout must be >= 0");
  }
  if (client_retries < 0) {
    return Status::InvalidArgument("client_retries must be >= 0");
  }
  if (health_phi_threshold <= 0.0) {
    return Status::InvalidArgument("health_phi_threshold must be > 0");
  }
  if (health_hedge_interval <= 0) {
    return Status::InvalidArgument("health_hedge_interval must be > 0");
  }
  if (!fault_plan.empty()) {
    if (Status st = fault_plan.Validate(n); !st.ok()) {
      return Status::InvalidArgument("fault_plan: " + st.ToString());
    }
  }

  // Deployment-level checks: build the HeliosConfig this spec implies and
  // reuse the operator-facing validator, so a spec that would start an
  // unsafe or impossible cluster is rejected here with the same message.
  core::HeliosConfig hc;
  hc.num_datacenters = n;
  hc.grace_time = grace_time;
  hc.log_interval = log_interval;
  hc.client_link_one_way = client_link_one_way;
  hc.clock_offsets = clock_offsets;
  switch (protocol) {
    case Protocol::kHelios1:
      hc.fault_tolerance = 1;
      break;
    case Protocol::kHelios2:
      hc.fault_tolerance = 2;
      break;
    default:
      hc.fault_tolerance = 0;
  }
  if (protocol == Protocol::kHelios0 || protocol == Protocol::kHelios1 ||
      protocol == Protocol::kHelios2) {
    const lp::RttMatrix& rtt =
        rtt_estimate_ms.has_value() ? *rtt_estimate_ms : topo.rtt_ms;
    auto mao = lp::SolveMao(rtt);
    if (!mao.ok()) {
      return Status::InvalidArgument("commit-offset planning failed: " +
                                     mao.status().ToString());
    }
    hc.commit_offsets = PlanCommitOffsets(topo, rtt_estimate_ms);
  }
  return core::ValidateHeliosConfig(hc);
}

Result<ExperimentConfig> ExperimentSpec::ToConfig() const {
  Status st = Validate();
  if (!st.ok()) return st;
  ExperimentConfig cfg;
  cfg.topology = BuildTopology();
  cfg.protocol = protocol;
  cfg.total_clients = clients;
  cfg.warmup = warmup;
  cfg.measure = measure;
  cfg.drain = drain;
  cfg.seed = seed;
  cfg.workload.ops_per_txn = ops_per_txn;
  cfg.workload.write_fraction = write_fraction;
  cfg.workload.num_keys = num_keys;
  cfg.workload.zipf_theta = zipf_theta;
  cfg.workload.value_size = value_size;
  cfg.workload.read_only_fraction = read_only_fraction;
  cfg.workload.key_partitions = key_partitions;
  cfg.log_interval = log_interval;
  cfg.grace_time = grace_time;
  cfg.client_link_one_way = client_link_one_way;
  cfg.clock_offsets = clock_offsets;
  cfg.rtt_estimate_ms = rtt_estimate_ms;
  cfg.two_pc_coordinator = two_pc_coordinator;
  cfg.shards = shards;
  cfg.shard_by = shard_by;
  cfg.preload = preload;
  cfg.check_serializability = check_serializability;
  cfg.fault_plan = fault_plan;
  cfg.reliable = reliable == "on"    ? ReliableDelivery::kOn
                 : reliable == "off" ? ReliableDelivery::kOff
                                     : ReliableDelivery::kAuto;
  cfg.client_commit_timeout = client_timeout;
  cfg.client_max_retries = client_retries;
  cfg.trace.enabled = trace_enabled;
  if (trace_ring_capacity > 0) cfg.trace.ring_capacity = trace_ring_capacity;
  cfg.health.enabled = health_enabled;
  cfg.health.phi.threshold = health_phi_threshold;
  cfg.health.degraded_commit = health_degraded_commit;
  cfg.health.hedge_interval = health_hedge_interval;
  return cfg;
}

std::string ExperimentSpec::ToJson() const {
  std::string out;
  json::ObjectWriter w(&out);
  // Keys in alphabetical order — the deterministic-JSON contract.
  w.Field("check_serializability", check_serializability);
  w.Field("client_link_one_way_us", static_cast<int64_t>(client_link_one_way));
  // Omitted at their defaults so pre-timeout specs (and their sweep JSON)
  // stay byte-identical.
  if (client_retries != 3) {
    w.Field("client_retries", static_cast<int64_t>(client_retries));
  }
  if (client_timeout != 0) {
    w.Field("client_timeout_us", static_cast<int64_t>(client_timeout));
  }
  w.Field("clients", static_cast<int64_t>(clients));
  if (!clock_offsets.empty()) {
    w.Key("clock_offsets_us");
    out += '[';
    for (size_t i = 0; i < clock_offsets.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(clock_offsets[i]);
    }
    out += ']';
  }
  w.Field("drain_us", static_cast<int64_t>(drain));
  // Omitted when empty so pre-chaos specs (and their sweep JSON) stay
  // byte-identical.
  if (!fault_plan.empty()) w.Raw("fault_plan", fault_plan.ToJson());
  w.Field("grace_time_us", static_cast<int64_t>(grace_time));
  // Omitted at their defaults so pre-health specs stay byte-identical.
  if (!health_degraded_commit) {
    w.Field("health_degraded_commit", health_degraded_commit);
  }
  if (health_enabled) w.Field("health_enabled", health_enabled);
  if (health_hedge_interval != Millis(100)) {
    w.Field("health_hedge_interval_us",
            static_cast<int64_t>(health_hedge_interval));
  }
  if (health_phi_threshold != 8.0) {
    w.Field("health_phi_threshold", health_phi_threshold);
  }
  // Omitted at its default so pre-partitioning specs stay byte-identical.
  if (key_partitions != 1) {
    w.Field("key_partitions", static_cast<int64_t>(key_partitions));
  }
  if (!label.empty()) w.Field("label", label);
  w.Field("log_interval_us", static_cast<int64_t>(log_interval));
  w.Field("measure_us", static_cast<int64_t>(measure));
  w.Field("num_keys", num_keys);
  w.Field("ops_per_txn", static_cast<int64_t>(ops_per_txn));
  w.Field("preload", preload);
  w.Field("protocol", std::string(ProtocolToken(protocol)));
  w.Field("read_only_fraction", read_only_fraction);
  if (reliable != "auto") w.Field("reliable", reliable);
  if (rtt_estimate_ms.has_value()) {
    w.Key("rtt_estimate_ms");
    out += '[';
    const int n = rtt_estimate_ms->size();
    for (int a = 0; a < n; ++a) {
      if (a > 0) out += ',';
      out += '[';
      for (int b = 0; b < n; ++b) {
        if (b > 0) out += ',';
        json::AppendDouble(&out, a == b ? 0.0 : rtt_estimate_ms->Get(a, b));
      }
      out += ']';
    }
    out += ']';
  }
  w.Field("seed", seed);
  // Omitted at their defaults so pre-sharding specs stay byte-identical.
  if (shard_by != "hash") w.Field("shard_by", shard_by);
  if (shards != 1) w.Field("shards", static_cast<int64_t>(shards));
  w.Field("topology", topology);
  // Omitted at their defaults so pre-tracing specs stay byte-identical.
  if (trace_enabled) w.Field("trace", trace_enabled);
  if (trace_ring_capacity != 0) {
    w.Field("trace_ring_capacity",
            static_cast<uint64_t>(trace_ring_capacity));
  }
  w.Field("two_pc_coordinator", static_cast<int64_t>(two_pc_coordinator));
  w.Field("uniform_dcs", static_cast<int64_t>(uniform_dcs));
  w.Field("uniform_rtt_ms", uniform_rtt_ms);
  w.Field("uniform_stddev_ms", uniform_stddev_ms);
  w.Field("value_size", static_cast<int64_t>(value_size));
  w.Field("warmup_us", static_cast<int64_t>(warmup));
  w.Field("write_fraction", write_fraction);
  w.Field("zipf_theta", zipf_theta);
  w.Close();
  return out;
}

Result<ExperimentSpec> ExperimentSpec::FromJson(const std::string& json) {
  auto parsed = json::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const json::Value& root = parsed.value();
  if (root.kind != json::Value::Kind::kObject) {
    return Status::InvalidArgument("spec JSON must be an object");
  }

  ExperimentSpec spec;
  for (const auto& [key, v] : root.members) {
    Status st;
    if (key == "check_serializability") {
      st = json::ReadBool(key, v, &spec.check_serializability);
    } else if (key == "client_link_one_way_us") {
      st = json::ReadInt64(key, v, &spec.client_link_one_way);
    } else if (key == "client_retries") {
      st = json::ReadInt(key, v, &spec.client_retries);
    } else if (key == "client_timeout_us") {
      st = json::ReadInt64(key, v, &spec.client_timeout);
    } else if (key == "clients") {
      st = json::ReadInt(key, v, &spec.clients);
    } else if (key == "clock_offsets_us") {
      if (v.kind != json::Value::Kind::kArray) {
        st = json::WrongType(key, "an array");
      } else {
        spec.clock_offsets.clear();
        for (const json::Value& item : v.items) {
          Duration d = 0;
          st = json::ReadInt64(key, item, &d);
          if (!st.ok()) break;
          spec.clock_offsets.push_back(d);
        }
      }
    } else if (key == "drain_us") {
      st = json::ReadInt64(key, v, &spec.drain);
    } else if (key == "fault_plan") {
      auto plan = sim::FaultPlan::FromJsonValue(v);
      if (!plan.ok()) return plan.status();
      spec.fault_plan = std::move(plan).value();
    } else if (key == "grace_time_us") {
      st = json::ReadInt64(key, v, &spec.grace_time);
    } else if (key == "health_degraded_commit") {
      st = json::ReadBool(key, v, &spec.health_degraded_commit);
    } else if (key == "health_enabled") {
      st = json::ReadBool(key, v, &spec.health_enabled);
    } else if (key == "health_hedge_interval_us") {
      st = json::ReadInt64(key, v, &spec.health_hedge_interval);
    } else if (key == "health_phi_threshold") {
      st = json::ReadDouble(key, v, &spec.health_phi_threshold);
    } else if (key == "key_partitions") {
      st = json::ReadInt(key, v, &spec.key_partitions);
    } else if (key == "label") {
      st = json::ReadString(key, v, &spec.label);
    } else if (key == "log_interval_us") {
      st = json::ReadInt64(key, v, &spec.log_interval);
    } else if (key == "measure_us") {
      st = json::ReadInt64(key, v, &spec.measure);
    } else if (key == "num_keys") {
      st = json::ReadUint64(key, v, &spec.num_keys);
    } else if (key == "ops_per_txn") {
      st = json::ReadInt(key, v, &spec.ops_per_txn);
    } else if (key == "preload") {
      st = json::ReadBool(key, v, &spec.preload);
    } else if (key == "protocol") {
      std::string token;
      st = json::ReadString(key, v, &token);
      if (st.ok()) {
        auto p = ParseProtocolToken(token);
        if (!p.ok()) return p.status();
        spec.protocol = p.value();
      }
    } else if (key == "read_only_fraction") {
      st = json::ReadDouble(key, v, &spec.read_only_fraction);
    } else if (key == "reliable") {
      st = json::ReadString(key, v, &spec.reliable);
    } else if (key == "rtt_estimate_ms") {
      if (v.kind != json::Value::Kind::kArray || v.items.empty()) {
        st = json::WrongType(key, "a non-empty array of arrays");
      } else {
        const int n = static_cast<int>(v.items.size());
        lp::RttMatrix m(n);
        for (int a = 0; a < n && st.ok(); ++a) {
          const json::Value& row = v.items[static_cast<size_t>(a)];
          if (row.kind != json::Value::Kind::kArray ||
              static_cast<int>(row.items.size()) != n) {
            st = json::WrongType(key, "a square matrix");
            break;
          }
          for (int b = a + 1; b < n && st.ok(); ++b) {
            double rtt = 0.0;
            st = json::ReadDouble(key, row.items[static_cast<size_t>(b)], &rtt);
            if (st.ok()) {
              if (rtt < 0.0) {
                st = json::WrongType(key, "a matrix of non-negative RTTs");
              } else {
                m.Set(a, b, rtt);
              }
            }
          }
        }
        if (st.ok()) spec.rtt_estimate_ms = std::move(m);
      }
    } else if (key == "seed") {
      st = json::ReadUint64(key, v, &spec.seed);
    } else if (key == "shard_by") {
      st = json::ReadString(key, v, &spec.shard_by);
    } else if (key == "shards") {
      st = json::ReadInt(key, v, &spec.shards);
    } else if (key == "topology") {
      st = json::ReadString(key, v, &spec.topology);
    } else if (key == "trace") {
      st = json::ReadBool(key, v, &spec.trace_enabled);
    } else if (key == "trace_ring_capacity") {
      uint64_t cap = 0;
      st = json::ReadUint64(key, v, &cap);
      if (st.ok()) spec.trace_ring_capacity = static_cast<size_t>(cap);
    } else if (key == "two_pc_coordinator") {
      st = json::ReadInt(key, v, &spec.two_pc_coordinator);
    } else if (key == "uniform_dcs") {
      st = json::ReadInt(key, v, &spec.uniform_dcs);
    } else if (key == "uniform_rtt_ms") {
      st = json::ReadDouble(key, v, &spec.uniform_rtt_ms);
    } else if (key == "uniform_stddev_ms") {
      st = json::ReadDouble(key, v, &spec.uniform_stddev_ms);
    } else if (key == "value_size") {
      st = json::ReadInt(key, v, &spec.value_size);
    } else if (key == "warmup_us") {
      st = json::ReadInt64(key, v, &spec.warmup);
    } else if (key == "write_fraction") {
      st = json::ReadDouble(key, v, &spec.write_fraction);
    } else if (key == "zipf_theta") {
      st = json::ReadDouble(key, v, &spec.zipf_theta);
    } else {
      return Status::InvalidArgument("unknown spec field '" + key + "'");
    }
    if (!st.ok()) return st;
  }
  return spec;
}

bool operator==(const ExperimentSpec& a, const ExperimentSpec& b) {
  auto estimates_equal = [&] {
    if (a.rtt_estimate_ms.has_value() != b.rtt_estimate_ms.has_value()) {
      return false;
    }
    if (!a.rtt_estimate_ms.has_value()) return true;
    if (a.rtt_estimate_ms->size() != b.rtt_estimate_ms->size()) return false;
    for (int i = 0; i < a.rtt_estimate_ms->size(); ++i) {
      for (int j = i + 1; j < a.rtt_estimate_ms->size(); ++j) {
        if (a.rtt_estimate_ms->Get(i, j) != b.rtt_estimate_ms->Get(i, j)) {
          return false;
        }
      }
    }
    return true;
  };
  return a.label == b.label && a.protocol == b.protocol &&
         a.topology == b.topology && a.uniform_dcs == b.uniform_dcs &&
         a.uniform_rtt_ms == b.uniform_rtt_ms &&
         a.uniform_stddev_ms == b.uniform_stddev_ms &&
         a.clients == b.clients && a.warmup == b.warmup &&
         a.measure == b.measure && a.drain == b.drain && a.seed == b.seed &&
         a.ops_per_txn == b.ops_per_txn &&
         a.write_fraction == b.write_fraction && a.num_keys == b.num_keys &&
         a.zipf_theta == b.zipf_theta && a.value_size == b.value_size &&
         a.read_only_fraction == b.read_only_fraction &&
         a.log_interval == b.log_interval && a.grace_time == b.grace_time &&
         a.client_link_one_way == b.client_link_one_way &&
         a.clock_offsets == b.clock_offsets &&
         a.two_pc_coordinator == b.two_pc_coordinator &&
         a.shards == b.shards && a.shard_by == b.shard_by &&
         a.preload == b.preload &&
         a.check_serializability == b.check_serializability &&
         a.fault_plan == b.fault_plan && a.reliable == b.reliable &&
         a.client_timeout == b.client_timeout &&
         a.client_retries == b.client_retries &&
         a.trace_enabled == b.trace_enabled &&
         a.trace_ring_capacity == b.trace_ring_capacity &&
         a.health_enabled == b.health_enabled &&
         a.health_phi_threshold == b.health_phi_threshold &&
         a.health_degraded_commit == b.health_degraded_commit &&
         a.health_hedge_interval == b.health_hedge_interval &&
         estimates_equal();
}

}  // namespace helios::harness
