#include "harness/job_pool.h"

#include <utility>

namespace helios::harness {

int ResolveJobCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

JobPool::JobPool(int num_threads) {
  const int n = ResolveJobCount(num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void JobPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || cancelled_.load(std::memory_order_relaxed)) return;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void JobPool::Cancel() {
  std::deque<std::function<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.store(true, std::memory_order_release);
    dropped.swap(queue_);  // Destroy closures outside the lock.
  }
  idle_cv_.notify_all();
}

void JobPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void JobPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;  // Anything still queued is dropped.
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace helios::harness
