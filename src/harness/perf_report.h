// PerfReport: the machine-readable performance document emitted by
// bench_perf (BENCH_*.json at the repo root) and consumed by the CI
// regression gate (tools/bench_compare) and by json_verify --schema=bench.
//
// Schema "helios-bench-perf-v1": one flat object
//   {"entries":[{"id":"...","metrics":{"name":number,...}},...],
//    "schema":"helios-bench-perf-v1"}
// Entries keep their emission order (the bench's execution order); metric
// keys are alphabetical. Everything else about the document follows the
// deterministic-JSON rules of common/json (the *values* are wall-clock
// measurements and of course differ run to run — the shape does not).
//
// Regression direction is encoded in the metric name: names ending in
// "_us", "_ms", or "_s" are latencies (lower is better); everything else
// is a rate (higher is better). bench_compare flags a metric when the
// current value is worse than baseline by more than the tolerance band.

#ifndef HELIOS_HARNESS_PERF_REPORT_H_
#define HELIOS_HARNESS_PERF_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace helios::harness {

inline constexpr char kPerfReportSchema[] = "helios-bench-perf-v1";

struct PerfEntry {
  std::string id;
  /// Metric name -> value; sorted by name on emission.
  std::vector<std::pair<std::string, double>> metrics;

  void Set(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  const double* Find(const std::string& name) const;
};

struct PerfReport {
  std::vector<PerfEntry> entries;

  PerfEntry& Add(std::string id);
  const PerfEntry* Find(const std::string& id) const;

  /// Deterministic shape: schema key, entries in insertion order, metric
  /// keys alphabetical within each entry.
  std::string ToJson() const;

  /// Parses and validates: the schema tag must match, every entry needs a
  /// non-empty string id and a metrics object of numbers, and unknown
  /// top-level or entry keys are errors.
  static Result<PerfReport> FromJson(const std::string& json);
};

/// True for latency-style metrics ("..._us", "..._ms", "..._s") where a
/// larger value is a regression.
bool MetricLowerIsBetter(const std::string& name);

/// One metric that got worse beyond the tolerance band.
struct PerfRegression {
  std::string entry;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// current/baseline for lower-is-better, baseline/current otherwise:
  /// always >1 for a regression, and the factor by which it is worse.
  double worse_by = 0.0;
};

/// Compares every metric present in BOTH reports (entries or metrics only
/// one side has are skipped — benches may gain entries over time).
/// `tolerance` is the allowed relative slowdown: 0.5 passes anything less
/// than 1.5x worse than baseline. Shared-machine CI timing is noisy, so
/// the default band is wide; the gate exists to catch step-function
/// regressions (an accidental O(n^2), a lost fast path), not 5% drift.
std::vector<PerfRegression> ComparePerfReports(const PerfReport& baseline,
                                               const PerfReport& current,
                                               double tolerance = 0.5);

}  // namespace helios::harness

#endif  // HELIOS_HARNESS_PERF_REPORT_H_
