#include "harness/experiment.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "baselines/replicated_commit.h"
#include "baselines/two_pc_paxos.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "workload/client.h"

namespace helios::harness {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHelios0:
      return "Helios-0";
    case Protocol::kHelios1:
      return "Helios-1";
    case Protocol::kHelios2:
      return "Helios-2";
    case Protocol::kHeliosB:
      return "Helios-B";
    case Protocol::kMessageFutures:
      return "MessageFutures";
    case Protocol::kReplicatedCommit:
      return "ReplicatedCommit";
    case Protocol::kTwoPcPaxos:
      return "2PC/Paxos";
  }
  return "?";
}

std::vector<std::vector<Duration>> PlanCommitOffsets(
    const Topology& topology, const std::optional<lp::RttMatrix>& estimate) {
  const lp::RttMatrix& rtt = estimate.has_value() ? *estimate : topology.rtt_ms;
  auto mao = lp::SolveMao(rtt);
  assert(mao.ok());
  const auto offsets_ms = lp::CommitOffsetsFromLatencies(rtt, mao.value());
  const int n = topology.size();
  std::vector<std::vector<Duration>> out(
      static_cast<size_t>(n), std::vector<Duration>(static_cast<size_t>(n), 0));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      out[a][b] = static_cast<Duration>(offsets_ms[a][b] * 1000.0);
    }
  }
  return out;
}

namespace {

int FaultTolerance(Protocol p) {
  switch (p) {
    case Protocol::kHelios1:
      return 1;
    case Protocol::kHelios2:
      return 2;
    default:
      return 0;
  }
}

bool IsHeliosFamily(Protocol p) {
  return p == Protocol::kHelios0 || p == Protocol::kHelios1 ||
         p == Protocol::kHelios2 || p == Protocol::kHeliosB ||
         p == Protocol::kMessageFutures;
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  const int n = config.topology.size();
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, config.seed);
  ConfigureNetwork(config.topology, &network);

  ExperimentResult result;
  if (config.trace.enabled) {
    result.trace =
        std::make_shared<obs::TraceRecorder>(config.trace.ring_capacity);
    result.metrics_registry = std::make_shared<obs::MetricsRegistry>();
    network.set_trace_recorder(result.trace.get());
  }

  std::unique_ptr<ProtocolCluster> cluster;
  core::HistoryRecorder* history = nullptr;

  if (IsHeliosFamily(config.protocol)) {
    core::HeliosConfig hc;
    hc.num_datacenters = n;
    hc.fault_tolerance = FaultTolerance(config.protocol);
    hc.grace_time = config.grace_time;
    hc.log_interval = config.log_interval;
    hc.client_link_one_way = config.client_link_one_way;
    hc.service = config.service;
    hc.clock_offsets = config.clock_offsets;
    if (config.protocol != Protocol::kHeliosB &&
        config.protocol != Protocol::kMessageFutures) {
      hc.commit_offsets = PlanCommitOffsets(config.topology,
                                            config.rtt_estimate_ms);
    }
    if (config.protocol == Protocol::kMessageFutures) {
      cluster = core::MakeMessageFuturesCluster(&scheduler, &network,
                                                std::move(hc));
    } else {
      cluster = std::make_unique<core::HeliosCluster>(
          &scheduler, &network, std::move(hc), core::LogProtocolKind::kHelios,
          ProtocolName(config.protocol));
    }
    history = &static_cast<core::HeliosCluster*>(cluster.get())->history();
  } else if (config.protocol == Protocol::kReplicatedCommit) {
    baselines::ReplicatedCommitConfig rc;
    rc.num_datacenters = n;
    rc.client_link_one_way = config.client_link_one_way;
    rc.service = config.service;
    rc.clock_offsets = config.clock_offsets;
    cluster = std::make_unique<baselines::ReplicatedCommitCluster>(
        &scheduler, &network, std::move(rc));
    history =
        &static_cast<baselines::ReplicatedCommitCluster*>(cluster.get())
             ->history();
  } else {
    baselines::TwoPcPaxosConfig tp;
    tp.num_datacenters = n;
    tp.coordinator = config.two_pc_coordinator;
    tp.client_link_one_way = config.client_link_one_way;
    tp.service = config.service;
    tp.clock_offsets = config.clock_offsets;
    cluster = std::make_unique<baselines::TwoPcPaxosCluster>(
        &scheduler, &network, std::move(tp));
    history =
        &static_cast<baselines::TwoPcPaxosCluster*>(cluster.get())->history();
  }

  if (config.preload) {
    for (uint64_t i = 0; i < config.workload.num_keys; ++i) {
      cluster->LoadInitialAll(workload::TYcsbGenerator::KeyName(i), "init");
    }
  }
  cluster->SetObservability(result.trace.get(), result.metrics_registry.get());
  cluster->Start();

  const sim::SimTime measure_from = config.warmup;
  const sim::SimTime measure_until = config.warmup + config.measure;
  std::vector<std::unique_ptr<workload::ClosedLoopClient>> clients;
  clients.reserve(static_cast<size_t>(config.total_clients));
  for (int c = 0; c < config.total_clients; ++c) {
    const DcId home = c % n;
    clients.push_back(std::make_unique<workload::ClosedLoopClient>(
        static_cast<uint64_t>(c), home, cluster.get(), &scheduler,
        config.workload, config.seed + 1000003, measure_from, measure_until,
        /*stop_at=*/measure_until));
    clients.back()->SetObservability(result.trace.get(),
                                     result.metrics_registry.get());
    // Stagger client start a little to avoid a synchronized burst.
    scheduler.At(Micros(37) * c,
                 [client = clients.back().get()]() { client->Start(); });
  }

  scheduler.RunUntil(measure_until + config.drain);

  // Aggregate per datacenter.
  result.protocol = ProtocolName(config.protocol);
  result.per_dc.resize(static_cast<size_t>(n));
  std::vector<workload::ClientMetrics> per_dc(static_cast<size_t>(n));
  for (const auto& client : clients) {
    per_dc[static_cast<size_t>(client->home())].Merge(client->metrics());
  }
  const double measure_s =
      static_cast<double>(config.measure) / 1'000'000.0;
  double latency_sum = 0.0;
  double abort_sum = 0.0;
  for (int dc = 0; dc < n; ++dc) {
    const workload::ClientMetrics& m = per_dc[static_cast<size_t>(dc)];
    DcResult& r = result.per_dc[static_cast<size_t>(dc)];
    r.name = config.topology.names[static_cast<size_t>(dc)];
    r.latency_mean_ms = m.commit_latency_ms.mean();
    r.latency_stddev_ms = m.commit_latency_ms.stddev();
    if (m.commit_latency_ms.count() > 1) {
      r.latency_ci95_ms = 1.96 * r.latency_stddev_ms /
                          std::sqrt(static_cast<double>(
                              m.commit_latency_ms.count()));
    }
    r.latency_p50_ms = m.commit_latency_ms.Median();
    r.latency_p99_ms = m.commit_latency_ms.Percentile(99);
    r.throughput_ops_s = static_cast<double>(m.ops_committed) / measure_s;
    r.abort_rate = m.abort_rate();
    r.committed = m.committed;
    r.aborted = m.aborted;
    latency_sum += r.latency_mean_ms;
    abort_sum += r.abort_rate;
    result.total_throughput_ops_s += r.throughput_ops_s;
  }
  result.avg_latency_ms = latency_sum / n;
  result.avg_abort_rate = abort_sum / n;

  auto mao = lp::SolveMao(config.topology.rtt_ms);
  if (mao.ok()) {
    result.optimal_latency_ms = mao.value();
    result.optimal_avg_latency_ms = lp::AverageLatency(mao.value());
  }

  if (config.check_serializability && history != nullptr) {
    result.serializability = core::CheckSerializable(history->commits());
  }
  result.events_processed = scheduler.events_processed();

  if (result.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = result.metrics_registry.get();
    cluster->ExportMetrics(reg);
    reg->counter("net.messages_sent").Set(network.messages_sent());
    reg->counter("net.messages_dropped").Set(network.messages_dropped());
    reg->counter("net.bytes_sent").Set(network.bytes_sent());
    reg->counter("sim.events_processed").Set(scheduler.events_processed());
    uint64_t committed = 0;
    uint64_t aborted = 0;
    for (const DcResult& r : result.per_dc) {
      committed += r.committed;
      aborted += r.aborted;
    }
    reg->counter("client.committed").Set(committed);
    reg->counter("client.aborted").Set(aborted);
    result.metrics = reg->Snapshot();
  }
  return result;
}

}  // namespace helios::harness
