#include "harness/experiment.h"

#include <cassert>
#include <cmath>
#include <memory>

#include "baselines/replicated_commit.h"
#include "baselines/two_pc_paxos.h"
#include "core/helios_cluster.h"
#include "core/history.h"
#include "harness/experiment_spec.h"
#include "shard/shard_map.h"
#include "shard/sharded_cluster.h"
#include "sim/network.h"
#include "sim/reliable.h"
#include "sim/scheduler.h"
#include "workload/client.h"

namespace helios::harness {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHelios0:
      return "Helios-0";
    case Protocol::kHelios1:
      return "Helios-1";
    case Protocol::kHelios2:
      return "Helios-2";
    case Protocol::kHeliosB:
      return "Helios-B";
    case Protocol::kMessageFutures:
      return "MessageFutures";
    case Protocol::kReplicatedCommit:
      return "ReplicatedCommit";
    case Protocol::kTwoPcPaxos:
      return "2PC/Paxos";
  }
  return "?";
}

std::vector<std::vector<Duration>> PlanCommitOffsets(
    const Topology& topology, const std::optional<lp::RttMatrix>& estimate) {
  const lp::RttMatrix& rtt = estimate.has_value() ? *estimate : topology.rtt_ms;
  auto mao = lp::SolveMao(rtt);
  assert(mao.ok());
  const auto offsets_ms = lp::CommitOffsetsFromLatencies(rtt, mao.value());
  const int n = topology.size();
  std::vector<std::vector<Duration>> out(
      static_cast<size_t>(n), std::vector<Duration>(static_cast<size_t>(n), 0));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      out[a][b] = static_cast<Duration>(offsets_ms[a][b] * 1000.0);
    }
  }
  return out;
}

namespace {

int FaultTolerance(Protocol p) {
  switch (p) {
    case Protocol::kHelios1:
      return 1;
    case Protocol::kHelios2:
      return 2;
    default:
      return 0;
  }
}

bool IsHeliosFamily(Protocol p) {
  return p == Protocol::kHelios0 || p == Protocol::kHelios1 ||
         p == Protocol::kHelios2 || p == Protocol::kHeliosB ||
         p == Protocol::kMessageFutures;
}

/// Seed-stream tag for the fault RNG: keeps fault decisions decorrelated
/// from every client and latency stream derived from the same base seed.
constexpr uint64_t kFaultSeedTag = 0xFA171;

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  const int n = config.topology.size();
  sim::Scheduler scheduler;
  sim::Network network(&scheduler, n, config.seed);
  ConfigureNetwork(config.topology, &network);

  // Chaos layer: install the fault plan's message faults and decide
  // whether the protocol needs the reliable session layer underneath.
  const bool has_message_faults = config.fault_plan.HasMessageFaults();
  if (!config.fault_plan.empty()) {
    const Status st = config.fault_plan.Validate(n);
    assert(st.ok() && "invalid fault plan; run FaultPlan::Validate first");
    (void)st;
  }
  if (has_message_faults) {
    const Status st = network.InstallMessageFaults(
        config.fault_plan, DeriveSeed(config.seed, kFaultSeedTag));
    assert(st.ok());
    (void)st;
  }
  // Gray link faults (slow-link, asymmetric partition) live in the
  // network; they are deterministic, so they neither consume randomness
  // nor engage the reliable session layer.
  const bool has_gray_link_faults = config.fault_plan.HasGrayLinkFaults();
  if (has_gray_link_faults) {
    const Status st = network.InstallGrayFaults(config.fault_plan);
    assert(st.ok());
    (void)st;
  }
  const bool reliable_on =
      config.reliable == ReliableDelivery::kOn ||
      (config.reliable == ReliableDelivery::kAuto && has_message_faults);
  sim::ReliableConfig mesh_config;
  mesh_config.enabled = reliable_on;
  sim::ReliableMesh mesh(&scheduler, &network, mesh_config);

  ExperimentResult result;
  if (config.trace.enabled) {
    result.trace =
        std::make_shared<obs::TraceRecorder>(config.trace.ring_capacity);
    result.metrics_registry = std::make_shared<obs::MetricsRegistry>();
    network.set_trace_recorder(result.trace.get());
    if (reliable_on) mesh.set_trace_recorder(result.trace.get());
  }

  std::unique_ptr<ProtocolCluster> cluster;
  core::HistoryRecorder* history = nullptr;
  shard::ShardedCluster* sharded = nullptr;
  const bool want_shards =
      config.shards > 1 && IsHeliosFamily(config.protocol) &&
      config.protocol != Protocol::kMessageFutures;
  assert(config.shards == 1 || want_shards);

  if (IsHeliosFamily(config.protocol)) {
    core::HeliosConfig hc;
    hc.num_datacenters = n;
    hc.fault_tolerance = FaultTolerance(config.protocol);
    hc.grace_time = config.grace_time;
    hc.log_interval = config.log_interval;
    hc.client_link_one_way = config.client_link_one_way;
    hc.service = config.service;
    hc.clock_offsets = config.clock_offsets;
    hc.health = config.health;
    if (config.protocol != Protocol::kHeliosB &&
        config.protocol != Protocol::kMessageFutures) {
      hc.commit_offsets = PlanCommitOffsets(config.topology,
                                            config.rtt_estimate_ms);
    }
    if (config.protocol == Protocol::kMessageFutures) {
      cluster = core::MakeMessageFuturesCluster(&scheduler, &network,
                                                std::move(hc));
      history = &static_cast<core::HeliosCluster*>(cluster.get())->history();
    } else if (want_shards) {
      const shard::ShardMap map =
          config.shard_by == "range"
              ? shard::ShardMap::RangeOverWorkloadKeys(
                    config.shards, config.workload.num_keys)
              : shard::ShardMap::Hash(config.shards);
      auto sc = std::make_unique<shard::ShardedCluster>(
          &scheduler, &network, std::move(hc), map,
          core::LogProtocolKind::kHelios, ProtocolName(config.protocol));
      sharded = sc.get();
      history = &sc->history();
      cluster = std::move(sc);
    } else {
      cluster = std::make_unique<core::HeliosCluster>(
          &scheduler, &network, std::move(hc), core::LogProtocolKind::kHelios,
          ProtocolName(config.protocol));
      history = &static_cast<core::HeliosCluster*>(cluster.get())->history();
    }
  } else if (config.protocol == Protocol::kReplicatedCommit) {
    baselines::ReplicatedCommitConfig rc;
    rc.num_datacenters = n;
    rc.client_link_one_way = config.client_link_one_way;
    rc.service = config.service;
    rc.clock_offsets = config.clock_offsets;
    cluster = std::make_unique<baselines::ReplicatedCommitCluster>(
        &scheduler, &network, std::move(rc));
    history =
        &static_cast<baselines::ReplicatedCommitCluster*>(cluster.get())
             ->history();
  } else {
    baselines::TwoPcPaxosConfig tp;
    tp.num_datacenters = n;
    tp.coordinator = config.two_pc_coordinator;
    tp.client_link_one_way = config.client_link_one_way;
    tp.service = config.service;
    tp.clock_offsets = config.clock_offsets;
    cluster = std::make_unique<baselines::TwoPcPaxosCluster>(
        &scheduler, &network, std::move(tp));
    history =
        &static_cast<baselines::TwoPcPaxosCluster*>(cluster.get())->history();
  }

  if (config.preload) {
    for (uint64_t i = 0; i < config.workload.num_keys; ++i) {
      cluster->LoadInitialAll(workload::TYcsbGenerator::KeyName(i), "init");
    }
  }
  cluster->SetObservability(result.trace.get(), result.metrics_registry.get());
  if (reliable_on) cluster->SetReliableMesh(&mesh);
  cluster->Start();

  // Timed chaos events: each crash/recover flips both the network (drop
  // traffic) and the protocol process (stop serving); partitions are
  // network-only, exactly like the paper's Section 4.4 scenarios.
  for (const sim::NodeEvent& e : config.fault_plan.node_events) {
    scheduler.At(e.at, [&network, cluster = cluster.get(), e]() {
      if (e.up) {
        (void)network.RecoverNode(e.node);
      } else {
        (void)network.CrashNode(e.node);
      }
      cluster->SetDatacenterDown(e.node, !e.up);
    });
  }
  for (const sim::PartitionEvent& e : config.fault_plan.partition_events) {
    scheduler.At(e.at, [&network, e]() {
      (void)network.SetPartitioned(e.a, e.b, e.partitioned);
    });
  }
  // Gray node faults: a stall is delivered to the process when it begins;
  // the node models the rest of the window itself (link kinds were
  // installed into the network above).
  for (const sim::GrayFault& g : config.fault_plan.gray_faults) {
    if (g.kind == sim::GrayFaultKind::kProcessStall) {
      scheduler.At(g.active_from, [cluster = cluster.get(), g]() {
        cluster->InjectStall(g.a, g.active_until - g.active_from);
      });
    } else if (g.kind == sim::GrayFaultKind::kFsyncStall) {
      scheduler.At(g.active_from, [cluster = cluster.get(), g]() {
        cluster->InjectFsyncStall(g.a, g.extra_delay,
                                  g.active_until - g.active_from);
      });
    }
  }

  const sim::SimTime measure_from = config.warmup;
  const sim::SimTime measure_until = config.warmup + config.measure;
  std::vector<std::unique_ptr<workload::ClosedLoopClient>> clients;
  clients.reserve(static_cast<size_t>(config.total_clients));
  for (int c = 0; c < config.total_clients; ++c) {
    const DcId home = c % n;
    clients.push_back(std::make_unique<workload::ClosedLoopClient>(
        static_cast<uint64_t>(c), home, cluster.get(), &scheduler,
        config.workload, config.seed + 1000003, measure_from, measure_until,
        /*stop_at=*/measure_until));
    clients.back()->SetObservability(result.trace.get(),
                                     result.metrics_registry.get());
    if (config.client_commit_timeout > 0) {
      clients.back()->SetCommitTimeout(config.client_commit_timeout,
                                       config.client_max_retries,
                                       config.client_retry_backoff);
    }
    if (config.shards > 1) {
      // Cross-shard parallel commit livelocks under synchronized
      // contention without client pacing (see SetAbortBackoff); the seed
      // derivation keeps sharded runs deterministic.
      workload::BackoffPolicy abort_backoff;
      abort_backoff.base = Millis(2);
      abort_backoff.cap = Millis(100);
      abort_backoff.max_retries = 6;
      clients.back()->SetAbortBackoff(abort_backoff, config.seed + 2000003);
    }
    if (config.capture_artifacts) clients.back()->EnableSessionLog();
    // Stagger client start a little to avoid a synchronized burst.
    scheduler.At(Micros(37) * c,
                 [client = clients.back().get()]() { client->Start(); });
  }

  scheduler.RunUntil(measure_until + config.drain);

  // Aggregate per datacenter.
  result.protocol = ProtocolName(config.protocol);
  result.per_dc.resize(static_cast<size_t>(n));
  std::vector<workload::ClientMetrics> per_dc(static_cast<size_t>(n));
  for (const auto& client : clients) {
    per_dc[static_cast<size_t>(client->home())].Merge(client->metrics());
    result.client_timeouts += client->metrics().timeouts;
    result.client_retries += client->metrics().retries;
  }
  const double measure_s =
      static_cast<double>(config.measure) / 1'000'000.0;
  double latency_sum = 0.0;
  double abort_sum = 0.0;
  for (int dc = 0; dc < n; ++dc) {
    const workload::ClientMetrics& m = per_dc[static_cast<size_t>(dc)];
    DcResult& r = result.per_dc[static_cast<size_t>(dc)];
    r.name = config.topology.names[static_cast<size_t>(dc)];
    r.latency_mean_ms = m.commit_latency_ms.mean();
    r.latency_stddev_ms = m.commit_latency_ms.stddev();
    if (m.commit_latency_ms.count() > 1) {
      r.latency_ci95_ms = 1.96 * r.latency_stddev_ms /
                          std::sqrt(static_cast<double>(
                              m.commit_latency_ms.count()));
    }
    r.latency_p50_ms = m.commit_latency_ms.Median();
    r.latency_p99_ms = m.commit_latency_ms.Percentile(99);
    r.throughput_ops_s = static_cast<double>(m.ops_committed) / measure_s;
    r.abort_rate = m.abort_rate();
    r.committed = m.committed;
    r.aborted = m.aborted;
    latency_sum += r.latency_mean_ms;
    abort_sum += r.abort_rate;
    result.total_throughput_ops_s += r.throughput_ops_s;
  }
  result.avg_latency_ms = latency_sum / n;
  result.avg_abort_rate = abort_sum / n;

  auto mao = lp::SolveMao(config.topology.rtt_ms);
  if (mao.ok()) {
    result.optimal_latency_ms = mao.value();
    result.optimal_avg_latency_ms = lp::AverageLatency(mao.value());
  }

  if (config.check_serializability && history != nullptr) {
    result.serializability = core::CheckSerializable(history->commits());
  }
  result.events_processed = scheduler.events_processed();

  // Oracle inputs (src/check): snapshot everything the invariant checks
  // need while the cluster is still alive.
  if (config.capture_artifacts) {
    auto cap = std::make_shared<RunCapture>();
    if (history != nullptr) cap->history = history->commits();
    cap->sessions.reserve(clients.size());
    for (const auto& client : clients) {
      if (client->session_log() != nullptr) {
        cap->sessions.push_back(*client->session_log());
      }
    }
    cap->wals.resize(static_cast<size_t>(n));
    cap->wal_present.assign(static_cast<size_t>(n), false);
    cap->stores.resize(static_cast<size_t>(n));
    cap->dc_down.assign(static_cast<size_t>(n), false);
    for (DcId dc = 0; dc < n; ++dc) {
      const size_t i = static_cast<size_t>(dc);
      if (const wal::MemoryWal* w = cluster->wal_journal(dc)) {
        cap->wals[i] = w->contents();
        cap->wal_present[i] = true;
      }
      cluster->SnapshotStore(dc, [&](const Key& key, const VersionedValue& v) {
        cap->stores[i][key] = v;
      });
      cap->dc_down[i] = cluster->datacenter_down(dc);
    }
    cap->recovery = cluster->recovery_snapshot();
    if (sharded != nullptr) {
      const int shards = config.shards;
      cap->shards = shards;
      cap->shard_wals.resize(static_cast<size_t>(n * shards));
      cap->shard_wal_present.assign(static_cast<size_t>(n * shards), false);
      cap->txn_status.resize(static_cast<size_t>(n));
      for (DcId dc = 0; dc < n; ++dc) {
        for (int s = 0; s < shards; ++s) {
          const size_t i = static_cast<size_t>(dc * shards + s);
          if (const wal::MemoryWal* w = sharded->shard_wal_journal(dc, s)) {
            cap->shard_wals[i] = w->contents();
            cap->shard_wal_present[i] = true;
          }
        }
        cap->txn_status[static_cast<size_t>(dc)] =
            sharded->txn_status(dc).entries();
      }
    }
    result.capture = std::move(cap);
  }

  if (result.metrics_registry != nullptr) {
    obs::MetricsRegistry* reg = result.metrics_registry.get();
    cluster->ExportMetrics(reg);
    reg->counter("net.messages_sent").Set(network.messages_sent());
    reg->counter("net.messages_dropped").Set(network.messages_dropped());
    reg->counter("net.bytes_sent").Set(network.bytes_sent());
    reg->counter("sim.events_processed").Set(scheduler.events_processed());
    if (has_message_faults) {
      reg->counter("net.fault_drops").Set(network.fault_drops());
      reg->counter("net.fault_duplicates").Set(network.fault_duplicates());
      reg->counter("net.fault_reorders").Set(network.fault_reorders());
    }
    if (has_gray_link_faults) {
      reg->counter("net.gray_slowed").Set(network.gray_slowed());
      reg->counter("net.gray_asym_drops").Set(network.gray_asym_drops());
    }
    if (reliable_on) {
      reg->counter("reliable.retransmits").Set(mesh.retransmits());
      reg->counter("reliable.duplicates_suppressed")
          .Set(mesh.duplicates_suppressed());
      reg->counter("reliable.acks_sent").Set(mesh.acks_sent());
      reg->counter("reliable.gave_up").Set(mesh.gave_up());
    }
    uint64_t committed = 0;
    uint64_t aborted = 0;
    for (const DcResult& r : result.per_dc) {
      committed += r.committed;
      aborted += r.aborted;
    }
    reg->counter("client.committed").Set(committed);
    reg->counter("client.aborted").Set(aborted);
    // Gated on the feature being enabled so crash-free snapshots keep
    // their pre-existing key set byte for byte.
    if (config.client_commit_timeout > 0) {
      reg->counter("client.timeouts").Set(result.client_timeouts);
      reg->counter("client.retries").Set(result.client_retries);
    }
    result.metrics = reg->Snapshot();
  }
  return result;
}

}  // namespace helios::harness
