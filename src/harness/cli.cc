#include "harness/cli.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/experiment_spec.h"

namespace helios::harness::cli {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  if (csv.empty()) return out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  // getline drops a trailing empty segment ("a," -> one entry); restore it
  // so splitting is the exact inverse of joining.
  if (!csv.empty() && csv.back() == ',') out.emplace_back();
  return out;
}

Result<std::vector<Protocol>> ParseProtocolList(const std::string& csv) {
  std::vector<Protocol> out;
  for (const std::string& token : SplitCsv(csv)) {
    auto p = ParseProtocolToken(token);
    if (!p.ok()) return p.status();
    out.push_back(p.value());
  }
  if (out.empty()) {
    return Status::InvalidArgument("protocol list must not be empty");
  }
  return out;
}

Result<std::vector<uint64_t>> ParseSeedList(const std::string& csv) {
  std::vector<uint64_t> out;
  for (const std::string& item : SplitCsv(csv)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    if (item.empty() || end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad seed '" + item + "'");
    }
    out.push_back(static_cast<uint64_t>(v));
  }
  return out;
}

Result<std::vector<double>> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& item : SplitCsv(csv)) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (item.empty() || end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad number '" + item + "'");
    }
    out.push_back(v);
  }
  return out;
}

Result<std::vector<Duration>> ParseMillisList(const std::string& csv) {
  std::vector<Duration> out;
  for (const std::string& item : SplitCsv(csv)) {
    char* end = nullptr;
    const long long v = std::strtoll(item.c_str(), &end, 10);
    if (item.empty() || end == item.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad milliseconds value '" + item + "'");
    }
    out.push_back(Millis(v));
  }
  return out;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << content;
  out.flush();
  if (!out) return Status::Internal("failed writing " + path);
  return Status::Ok();
}

void AddCommonFlags(FlagSet* flags, int default_jobs) {
  flags->DefineInt("jobs", default_jobs,
                   "concurrent jobs (0 = one per hardware thread)");
  flags->DefineString("json_out", "",
                      "write the deterministic JSON results document here");
  flags->DefineBool("help", false, "show this help");
}

void ParseOrExit(FlagSet* flags, int argc, char** argv) {
  const Status parsed = flags->Parse(argc, argv);
  if (parsed.ok() && !flags->GetBool("help")) return;
  if (!parsed.ok()) std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
  std::fprintf(stderr, "usage: %s [flags]\n%s", argv[0],
               flags->Help().c_str());
  std::exit(parsed.ok() ? kExitOk : kExitUsage);
}

int FailWith(const Status& status, int exit_code) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
  }
  return exit_code;
}

}  // namespace helios::harness::cli
