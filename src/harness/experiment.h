// The experiment runner: builds a protocol deployment on a simulated
// topology, drives T-YCSB closed-loop clients through warm-up and a
// measurement window, and aggregates the paper's metrics (per-datacenter
// commit latency with stddev/CI, throughput in operations/sec of committed
// transactions, abort rate).
//
// Every figure and table bench in bench/ is a thin wrapper around
// RunExperiment with the appropriate parameters.

#ifndef HELIOS_HARNESS_EXPERIMENT_H_
#define HELIOS_HARNESS_EXPERIMENT_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/protocol.h"
#include "common/status.h"
#include "common/types.h"
#include "core/helios_config.h"
#include "core/history.h"
#include "harness/topology.h"
#include "lp/mao.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/txn_status_store.h"
#include "sim/fault_plan.h"
#include "wal/wal_sink.h"
#include "workload/client.h"
#include "workload/tycsb.h"

namespace helios::harness {

/// Which protocol deployment to run. Helios-0/1/2 tolerate 0/1/2
/// datacenter outages; Helios-B runs with all commit offsets zero (no RTT
/// estimation), exactly the paper's baseline configuration.
enum class Protocol {
  kHelios0,
  kHelios1,
  kHelios2,
  kHeliosB,
  kMessageFutures,
  kReplicatedCommit,
  kTwoPcPaxos,
};

const char* ProtocolName(Protocol p);

/// Whether to put the reliable-delivery session layer (sim::ReliableMesh)
/// under the protocol. kAuto engages it exactly when the fault plan can
/// lose/duplicate/reorder messages, so fault-free runs keep the session
/// layer fully out of the event stream.
enum class ReliableDelivery { kAuto, kOff, kOn };

/// INTERNAL — the materialized runner input. New code should not fill this
/// struct by hand: build a harness::ExperimentSpec with its fluent builder
/// and call ToConfig(), which validates the spec (including the Rule 1
/// safety check) before producing one of these. The raw struct remains
/// public only as the compatibility bridge for RunExperiment and for the
/// few knobs (service model) the spec intentionally does not expose.
struct ExperimentConfig {
  Topology topology = Table2Topology();
  Protocol protocol = Protocol::kHelios0;

  /// Clients are assigned to datacenters round-robin ("60 clients
  /// scattered across all datacenters").
  int total_clients = 60;

  Duration warmup = Seconds(5);
  Duration measure = Seconds(30);
  /// Extra simulated time after the window so in-flight transactions that
  /// requested commit inside the window still reach a decision.
  Duration drain = Seconds(5);

  uint64_t seed = 42;
  workload::WorkloadConfig workload;
  core::ServiceModel service;

  Duration log_interval = Millis(10);
  Duration grace_time = Millis(500);
  Duration client_link_one_way = Micros(500);

  /// Per-datacenter clock offsets in microseconds (Figure 5 skew
  /// scenarios); empty = synchronized.
  std::vector<Duration> clock_offsets;

  /// RTT matrix used to *plan* commit offsets (Section 4.5). Defaults to
  /// the topology's true RTTs; Figure 5's estimation-error experiments
  /// pass a perturbed matrix here while the network keeps the truth.
  std::optional<lp::RttMatrix> rtt_estimate_ms;

  /// 2PC/Paxos coordinator (the paper uses Virginia = index 0).
  DcId two_pc_coordinator = 0;

  /// Horizontal sharding (src/shard): number of independent Helios
  /// deployments per datacenter and the key-partition kind ("hash" or
  /// "range" over the workload keyspace). shards == 1 constructs the
  /// plain unsharded cluster exactly as before; shards > 1 is only valid
  /// for the Helios protocols (not Message Futures or the baselines).
  int shards = 1;
  std::string shard_by = "hash";

  /// Pre-populate all workload keys before the run.
  bool preload = true;

  /// Verify conflict-serializability of the committed history after the
  /// run (cheap for test-scale runs; quadratic-ish for huge ones).
  bool check_serializability = false;

  /// Observability (src/obs). Disabled by default: with trace.enabled
  /// false no recorder or registry is created and every instrumentation
  /// site stays on its null-pointer fast path.
  obs::TraceConfig trace;

  /// Chaos: fault schedule executed during the run (docs/FAULTS.md).
  /// Message faults are installed into the network with a seed derived
  /// from `seed`; node/partition events fire at their scheduled times.
  /// Empty = no faults, and the run is bit-identical to a build without
  /// the chaos layer.
  sim::FaultPlan fault_plan;
  ReliableDelivery reliable = ReliableDelivery::kAuto;

  /// Gray-failure detection/reaction for the Helios-family protocols
  /// (docs/FAULTS.md "Gray failures and suspicion"). Disabled by default:
  /// the detector then never exists and runs stay bit-identical to builds
  /// without the subsystem. Baselines ignore it.
  core::HealthConfig health;

  /// Client-side commit timeout (docs/RECOVERY.md): a transaction attempt
  /// exceeding this is abandoned and retried with exponential backoff, up
  /// to `client_max_retries` retries. 0 (the default) arms no timer, so
  /// crash-free runs stay bit-identical; crash runs need it — a request
  /// swallowed by a crashed datacenter otherwise wedges its closed-loop
  /// client forever.
  Duration client_commit_timeout = 0;
  int client_max_retries = 3;
  Duration client_retry_backoff = Millis(50);

  /// Capture end-of-run artifacts (committed history, per-client session
  /// logs, per-datacenter WAL contents and store snapshots) into
  /// ExperimentResult::capture for the src/check invariant oracles. Off by
  /// default: capturing copies WALs and stores, which measurement runs
  /// should not pay for.
  bool capture_artifacts = false;
};

/// Everything the invariant oracles (src/check) inspect after a run,
/// snapshotted before the cluster is torn down. Indexed per datacenter
/// where applicable.
struct RunCapture {
  std::vector<core::CommittedTxn> history;     ///< Committed transactions.
  std::vector<workload::SessionLog> sessions;  ///< One per client.
  std::vector<wal::WalContents> wals;          ///< Durable journals.
  std::vector<bool> wal_present;               ///< wal_journal() != null.
  /// Latest version of every key in each replica's live store.
  std::vector<std::map<Key, VersionedValue>> stores;
  std::vector<bool> dc_down;  ///< Crashed at end of run.
  RecoveryStats recovery;

  // Sharded deployments (src/shard). With shards == 1 everything below
  // stays empty and the oracles read the flat per-DC fields above.
  int shards = 1;
  /// Per-(datacenter, shard) journals, indexed dc * shards + s. A shard's
  /// journal carries only its slice of the traffic; the oracles check
  /// each (dc, shard) journal independently and merge a datacenter's
  /// journals for store replay (shard key sets are disjoint).
  std::vector<wal::WalContents> shard_wals;
  std::vector<bool> shard_wal_present;
  /// Per-datacenter durable coordinator status tables (the parallel-commit
  /// STAGED/COMMITTED/ABORTED records), for the staged-resolution oracle.
  std::vector<std::map<TxnId, shard::TxnStatusRecord>> txn_status;
};

struct DcResult {
  std::string name;
  double latency_mean_ms = 0.0;
  double latency_stddev_ms = 0.0;
  double latency_ci95_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double throughput_ops_s = 0.0;
  double abort_rate = 0.0;  ///< Fraction in [0, 1].
  uint64_t committed = 0;
  uint64_t aborted = 0;
};

struct ExperimentResult {
  std::string protocol;
  std::vector<DcResult> per_dc;

  double avg_latency_ms = 0.0;           ///< Mean of per-DC means.
  double total_throughput_ops_s = 0.0;
  double avg_abort_rate = 0.0;

  /// The MAO optimum for the topology (the "Optimal" line in Figure 3).
  std::vector<double> optimal_latency_ms;
  double optimal_avg_latency_ms = 0.0;

  /// Only set when check_serializability was requested and the protocol
  /// records history.
  std::optional<Status> serializability;

  /// Totals across clients; nonzero only with client_commit_timeout set.
  uint64_t client_timeouts = 0;
  uint64_t client_retries = 0;

  uint64_t events_processed = 0;

  /// Populated when config.trace.enabled: the full per-transaction event
  /// trace (exportable as Chrome trace_event JSON) and the metrics
  /// snapshot taken at the end of the run. The live registry is also kept
  /// so callers can inspect raw histograms.
  std::shared_ptr<obs::TraceRecorder> trace;
  std::shared_ptr<obs::MetricsRegistry> metrics_registry;
  obs::MetricsSnapshot metrics;

  /// Populated when config.capture_artifacts: the oracle inputs.
  std::shared_ptr<RunCapture> capture;
};

/// Runs one experiment to completion. Deterministic given the config.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Commit offsets (microseconds) Helios would use for this config: MAO on
/// the RTT estimate, converted through Eq. 5. Exposed for benches that
/// report the planning stage itself.
std::vector<std::vector<Duration>> PlanCommitOffsets(
    const Topology& topology, const std::optional<lp::RttMatrix>& estimate);

}  // namespace helios::harness

#endif  // HELIOS_HARNESS_EXPERIMENT_H_
