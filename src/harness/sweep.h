// SweepRunner: executes a grid of ExperimentSpecs concurrently on a
// fixed-size JobPool and reduces the results deterministically.
//
// Determinism contract: every experiment is a self-contained deterministic
// simulation (its own scheduler, network, RNGs — seeded from the spec, no
// globals), so the per-job results and the aggregated JSON are BIT-
// IDENTICAL whatever `jobs` is; only wall-clock changes. Tests pin this
// (sweep_engine_test.cc, SerialAndParallelRunsAreBitIdentical).
//
// Failure policy: a job fails if its spec does not validate or if its
// requested serializability check finds a violation. By default the first
// failure cancels every job still queued (running jobs finish); the sweep
// then reports which jobs ran, failed, or were cancelled.
//
// Progress: an optional callback fires after every job (serialized), and
// an optional obs::MetricsRegistry receives sweep.jobs_total/done/failed
// gauges plus elapsed/ETA seconds — the same registry surface the rest of
// the system exports through.

#ifndef HELIOS_HARNESS_SWEEP_H_
#define HELIOS_HARNESS_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/experiment.h"
#include "harness/experiment_spec.h"
#include "obs/metrics.h"

namespace helios::harness {

struct SweepProgress {
  int done = 0;    ///< Jobs finished (ok or failed).
  int total = 0;
  int failed = 0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;         ///< elapsed * remaining / done.
  std::string last_label;           ///< DisplayName of the job that just finished.
  Status last_status;
};

struct SweepOptions {
  /// Worker threads; <= 0 means hardware concurrency.
  int jobs = 1;
  /// Cancel all still-queued jobs after the first failure.
  bool cancel_on_failure = true;
  /// Called after each job completes. Invocations are serialized; keep it
  /// cheap (it runs on a worker thread while siblings may be blocked).
  std::function<void(const SweepProgress&)> progress;
  /// Optional registry for sweep.* gauges (not owned; updated under the
  /// same lock that serializes `progress`).
  obs::MetricsRegistry* metrics = nullptr;

  /// Adjusts the materialized config after spec validation and before the
  /// run (runs on a worker thread; must be thread-safe). The fuzz driver
  /// uses it to flip on tracing and artifact capture — knobs deliberately
  /// outside the spec JSON.
  std::function<void(const ExperimentSpec&, ExperimentConfig*)> configure;

  /// Post-run check, called for jobs whose experiment ran and passed the
  /// built-in checks (runs on a worker thread; must be thread-safe). A
  /// non-OK status fails the job — with cancel_on_failure this cancels the
  /// rest of the sweep. The callee may free heavy result fields (capture,
  /// trace) it has finished with.
  std::function<Status(const ExperimentSpec&, ExperimentResult*)> check;
};

struct SweepJobResult {
  ExperimentSpec spec;       ///< Config echo.
  Status status;             ///< OK iff the experiment ran (and passed checks).
  bool ran = false;          ///< False for jobs cancelled before starting.
  ExperimentResult result;   ///< Valid iff status.ok().
  double wall_seconds = 0.0; ///< This job's wall-clock (not in the JSON).
};

struct SweepResult {
  std::vector<SweepJobResult> jobs;  ///< In input-spec order.
  bool cancelled = false;
  double wall_seconds = 0.0;         ///< Whole-sweep wall-clock.
  double total_job_seconds = 0.0;    ///< Sum of per-job wall-clocks.

  /// OK iff every job ran and succeeded; otherwise the first failure (or
  /// a cancellation status for jobs that never started).
  Status status() const;

  /// Aggregate-compute over wall-clock: the parallel speedup actually
  /// realized (1.0 when jobs=1, up to min(jobs, grid) on idle cores).
  double Speedup() const;

  /// Deterministic JSON: stable (alphabetical) key order, per-job spec
  /// echo, per-DC metrics. Timing fields are deliberately excluded so the
  /// document is bit-identical across serial and parallel runs.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// One-line human timing summary ("8 jobs on 4 threads: wall 12.3s,
  /// aggregate 45.1s, speedup 3.67x").
  std::string TimingSummary() const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs all specs to completion (or cancellation). Blocking; thread-safe
  /// for distinct runners.
  SweepResult Run(const std::vector<ExperimentSpec>& specs);

  const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
};

}  // namespace helios::harness

#endif  // HELIOS_HARNESS_SWEEP_H_
