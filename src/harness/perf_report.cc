#include "harness/perf_report.h"

#include <algorithm>

#include "common/json.h"

namespace helios::harness {

const double* PerfEntry::Find(const std::string& name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return &v;
  }
  return nullptr;
}

PerfEntry& PerfReport::Add(std::string id) {
  entries.emplace_back();
  entries.back().id = std::move(id);
  return entries.back();
}

const PerfEntry* PerfReport::Find(const std::string& id) const {
  for (const PerfEntry& e : entries) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::string PerfReport::ToJson() const {
  std::string entries_json = "[";
  bool first_entry = true;
  for (const PerfEntry& e : entries) {
    if (!first_entry) entries_json += ',';
    first_entry = false;

    std::vector<std::pair<std::string, double>> sorted = e.metrics;
    std::sort(sorted.begin(), sorted.end());
    std::string metrics_json;
    json::ObjectWriter mw(&metrics_json);
    for (const auto& [name, value] : sorted) mw.Field(name.c_str(), value);
    mw.Close();

    std::string entry_json;
    json::ObjectWriter ew(&entry_json);
    ew.Field("id", e.id);
    ew.Raw("metrics", metrics_json);
    ew.Close();
    entries_json += entry_json;
  }
  entries_json += ']';

  std::string out;
  json::ObjectWriter w(&out);
  w.Raw("entries", entries_json);
  w.Field("schema", std::string(kPerfReportSchema));
  w.Close();
  return out;
}

Result<PerfReport> PerfReport::FromJson(const std::string& text) {
  auto parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const json::Value& root = parsed.value();
  if (root.kind != json::Value::Kind::kObject) {
    return Status::InvalidArgument("perf report must be a JSON object");
  }

  PerfReport report;
  bool saw_schema = false;
  bool saw_entries = false;
  for (const auto& [key, value] : root.members) {
    if (key == "schema") {
      std::string schema;
      if (const Status s = json::ReadString(key, value, &schema); !s.ok()) {
        return s;
      }
      if (schema != kPerfReportSchema) {
        return Status::InvalidArgument("unsupported perf schema '" + schema +
                                       "' (want " + kPerfReportSchema + ")");
      }
      saw_schema = true;
    } else if (key == "entries") {
      if (value.kind != json::Value::Kind::kArray) {
        return json::WrongType(key, "an array");
      }
      for (const json::Value& item : value.items) {
        if (item.kind != json::Value::Kind::kObject) {
          return Status::InvalidArgument("every entry must be an object");
        }
        PerfEntry entry;
        for (const auto& [ekey, evalue] : item.members) {
          if (ekey == "id") {
            if (const Status s = json::ReadString(ekey, evalue, &entry.id);
                !s.ok()) {
              return s;
            }
          } else if (ekey == "metrics") {
            if (evalue.kind != json::Value::Kind::kObject) {
              return json::WrongType(ekey, "an object");
            }
            for (const auto& [name, num] : evalue.members) {
              double v = 0.0;
              if (const Status s = json::ReadDouble(name, num, &v); !s.ok()) {
                return s;
              }
              entry.metrics.emplace_back(name, v);
            }
          } else {
            return Status::InvalidArgument("unknown entry key '" + ekey + "'");
          }
        }
        if (entry.id.empty()) {
          return Status::InvalidArgument("every entry needs a non-empty id");
        }
        report.entries.push_back(std::move(entry));
      }
      saw_entries = true;
    } else {
      return Status::InvalidArgument("unknown key '" + key + "'");
    }
  }
  if (!saw_schema) return Status::InvalidArgument("missing 'schema'");
  if (!saw_entries) return Status::InvalidArgument("missing 'entries'");
  return report;
}

bool MetricLowerIsBetter(const std::string& name) {
  const auto ends_with = [&name](const char* suffix) {
    const size_t n = std::string(suffix).size();
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  return ends_with("_us") || ends_with("_ms") || ends_with("_s");
}

std::vector<PerfRegression> ComparePerfReports(const PerfReport& baseline,
                                               const PerfReport& current,
                                               double tolerance) {
  std::vector<PerfRegression> out;
  for (const PerfEntry& base_entry : baseline.entries) {
    const PerfEntry* cur_entry = current.Find(base_entry.id);
    if (cur_entry == nullptr) continue;
    for (const auto& [name, base_value] : base_entry.metrics) {
      const double* cur_value = cur_entry->Find(name);
      if (cur_value == nullptr) continue;
      if (!(base_value > 0.0) || !(*cur_value > 0.0)) continue;
      const double worse_by = MetricLowerIsBetter(name)
                                  ? *cur_value / base_value
                                  : base_value / *cur_value;
      if (worse_by > 1.0 + tolerance) {
        out.push_back(PerfRegression{base_entry.id, name, base_value,
                                     *cur_value, worse_by});
      }
    }
  }
  return out;
}

}  // namespace helios::harness
