#include "harness/sweep.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "harness/job_pool.h"

namespace helios::harness {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
}

void AppendField(std::string* out, bool* first, const char* key) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
}

void AppendNum(std::string* out, bool* first, const char* key, double v) {
  AppendField(out, first, key);
  AppendDouble(out, v);
}

void AppendNum(std::string* out, bool* first, const char* key, uint64_t v) {
  AppendField(out, first, key);
  *out += std::to_string(v);
}

// Strings we emit here (protocol names, DC names, status strings) contain
// no characters needing escapes beyond the basics; escape defensively.
void AppendStr(std::string* out, bool* first, const char* key,
               const std::string& v) {
  AppendField(out, first, key);
  *out += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += '"';
}

void AppendResultJson(std::string* out, const ExperimentResult& r) {
  bool first = true;
  *out += '{';
  AppendNum(out, &first, "avg_abort_rate", r.avg_abort_rate);
  AppendNum(out, &first, "avg_latency_ms", r.avg_latency_ms);
  AppendNum(out, &first, "events_processed", r.events_processed);
  AppendNum(out, &first, "optimal_avg_latency_ms", r.optimal_avg_latency_ms);
  AppendField(out, &first, "optimal_latency_ms");
  *out += '[';
  for (size_t i = 0; i < r.optimal_latency_ms.size(); ++i) {
    if (i > 0) *out += ',';
    AppendDouble(out, r.optimal_latency_ms[i]);
  }
  *out += ']';
  AppendField(out, &first, "per_dc");
  *out += '[';
  for (size_t i = 0; i < r.per_dc.size(); ++i) {
    const DcResult& dc = r.per_dc[i];
    if (i > 0) *out += ',';
    bool dc_first = true;
    *out += '{';
    AppendNum(out, &dc_first, "abort_rate", dc.abort_rate);
    AppendNum(out, &dc_first, "aborted", dc.aborted);
    AppendNum(out, &dc_first, "committed", dc.committed);
    AppendNum(out, &dc_first, "latency_ci95_ms", dc.latency_ci95_ms);
    AppendNum(out, &dc_first, "latency_mean_ms", dc.latency_mean_ms);
    AppendNum(out, &dc_first, "latency_p50_ms", dc.latency_p50_ms);
    AppendNum(out, &dc_first, "latency_p99_ms", dc.latency_p99_ms);
    AppendNum(out, &dc_first, "latency_stddev_ms", dc.latency_stddev_ms);
    AppendStr(out, &dc_first, "name", dc.name);
    AppendNum(out, &dc_first, "throughput_ops_s", dc.throughput_ops_s);
    *out += '}';
  }
  *out += ']';
  AppendStr(out, &first, "protocol", r.protocol);
  if (r.serializability.has_value()) {
    AppendStr(out, &first, "serializability", r.serializability->ToString());
  }
  AppendNum(out, &first, "total_throughput_ops_s", r.total_throughput_ops_s);
  *out += '}';
}

}  // namespace

Status SweepResult::status() const {
  // Prefer a real failure over a "cancelled before start" placeholder so
  // callers see the root cause first.
  for (const SweepJobResult& job : jobs) {
    if (job.ran && !job.status.ok()) return job.status;
  }
  for (const SweepJobResult& job : jobs) {
    if (!job.status.ok()) return job.status;
  }
  return Status::Ok();
}

double SweepResult::Speedup() const {
  return wall_seconds > 0.0 ? total_job_seconds / wall_seconds : 0.0;
}

std::string SweepResult::ToJson() const {
  int failed = 0;
  for (const SweepJobResult& job : jobs) {
    if (job.ran && !job.status.ok()) ++failed;
  }
  std::string out;
  bool first = true;
  out += '{';
  AppendField(&out, &first, "cancelled");
  out += cancelled ? "true" : "false";
  AppendNum(&out, &first, "failed", static_cast<uint64_t>(failed));
  AppendField(&out, &first, "jobs");
  out += '[';
  for (size_t i = 0; i < jobs.size(); ++i) {
    const SweepJobResult& job = jobs[i];
    if (i > 0) out += ',';
    bool job_first = true;
    out += '{';
    AppendField(&out, &job_first, "ran");
    out += job.ran ? "true" : "false";
    if (job.status.ok()) {
      AppendField(&out, &job_first, "result");
      AppendResultJson(&out, job.result);
    }
    AppendField(&out, &job_first, "spec");
    out += job.spec.ToJson();
    AppendStr(&out, &job_first, "status", job.status.ToString());
    out += '}';
  }
  out += ']';
  AppendStr(&out, &first, "schema", "helios.sweep.v1");
  AppendNum(&out, &first, "total", static_cast<uint64_t>(jobs.size()));
  out += '}';
  return out;
}

Status SweepResult::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

std::string SweepResult::TimingSummary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%zu jobs: wall %.1fs, aggregate %.1fs, speedup %.2fx%s",
                jobs.size(), wall_seconds, total_job_seconds, Speedup(),
                cancelled ? " (cancelled)" : "");
  return buf;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {}

SweepResult SweepRunner::Run(const std::vector<ExperimentSpec>& specs) {
  const int total = static_cast<int>(specs.size());
  SweepResult sweep;
  sweep.jobs.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    sweep.jobs[i].spec = specs[i];
    sweep.jobs[i].status =
        Status::Aborted("cancelled before start (an earlier job failed)");
  }

  const Clock::time_point start = Clock::now();
  std::mutex progress_mu;  // Serializes progress state, callback, metrics.
  int done = 0;
  int failed = 0;

  if (options_.metrics != nullptr) {
    options_.metrics->gauge("sweep.jobs_total").Set(total);
    options_.metrics->gauge("sweep.jobs_done").Set(0);
    options_.metrics->gauge("sweep.jobs_failed").Set(0);
  }

  {
    JobPool pool(options_.jobs);
    for (int i = 0; i < total; ++i) {
      pool.Submit([&, i] {
        SweepJobResult& out = sweep.jobs[static_cast<size_t>(i)];
        const Clock::time_point job_start = Clock::now();
        Status st = Status::Ok();
        auto cfg = out.spec.ToConfig();  // Validates.
        if (!cfg.ok()) {
          st = cfg.status();
        } else {
          if (options_.configure) options_.configure(out.spec, &cfg.value());
          out.result = RunExperiment(cfg.value());
          if (out.result.serializability.has_value() &&
              !out.result.serializability->ok()) {
            st = *out.result.serializability;
          }
          if (st.ok() && options_.check) {
            st = options_.check(out.spec, &out.result);
          }
        }
        out.status = st;
        out.ran = true;
        out.wall_seconds = SecondsSince(job_start);

        SweepProgress p;
        {
          std::lock_guard<std::mutex> lock(progress_mu);
          ++done;
          if (!st.ok()) {
            ++failed;
            if (options_.cancel_on_failure) pool.Cancel();
          }
          p.done = done;
          p.total = total;
          p.failed = failed;
          p.elapsed_seconds = SecondsSince(start);
          p.eta_seconds =
              done > 0 ? p.elapsed_seconds *
                             static_cast<double>(total - done) / done
                       : 0.0;
          p.last_label = out.spec.DisplayName();
          p.last_status = st;
          if (options_.metrics != nullptr) {
            options_.metrics->gauge("sweep.jobs_done").Set(done);
            options_.metrics->gauge("sweep.jobs_failed").Set(failed);
            options_.metrics->gauge("sweep.elapsed_seconds")
                .Set(p.elapsed_seconds);
            options_.metrics->gauge("sweep.eta_seconds").Set(p.eta_seconds);
          }
          if (options_.progress) options_.progress(p);
        }
      });
    }
    pool.Wait();
    sweep.cancelled = pool.cancelled();
  }

  sweep.wall_seconds = SecondsSince(start);
  for (const SweepJobResult& job : sweep.jobs) {
    sweep.total_job_seconds += job.wall_seconds;
  }
  return sweep;
}

}  // namespace helios::harness
