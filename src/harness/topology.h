// Deployment topologies: named datacenters plus the RTT mean/stddev
// matrices that configure the simulated WAN. Includes the paper's two
// canonical instances — the five-datacenter AWS deployment of Table 2 and
// the three-datacenter example of Section 3.2 / Table 1.

#ifndef HELIOS_HARNESS_TOPOLOGY_H_
#define HELIOS_HARNESS_TOPOLOGY_H_

#include <string>
#include <vector>

#include "lp/mao.h"
#include "sim/network.h"

namespace helios::harness {

struct Topology {
  std::vector<std::string> names;
  lp::RttMatrix rtt_ms;
  lp::RttMatrix rtt_stddev_ms;

  explicit Topology(int n)
      : names(static_cast<size_t>(n)), rtt_ms(n), rtt_stddev_ms(n) {}

  int size() const { return rtt_ms.size(); }
  void Set(int a, int b, double rtt, double stddev) {
    rtt_ms.Set(a, b, rtt);
    rtt_stddev_ms.Set(a, b, stddev);
  }
};

/// Table 2: Virginia, Oregon, California, Ireland, Singapore with the
/// measured RTT means and standard deviations in milliseconds.
Topology Table2Topology();

/// The Section 3.2 / Table 1 example: three datacenters A, B, C with
/// RTT(A,B)=30, RTT(A,C)=20, RTT(B,C)=40.
Topology PaperExampleTopology();

/// Synthetic all-pairs-equal topology.
Topology UniformTopology(int n, double rtt_ms, double stddev_ms = 0.0);

/// Applies the topology's link parameters to a simulated network of the
/// same size.
void ConfigureNetwork(const Topology& topology, sim::Network* network);

}  // namespace helios::harness

#endif  // HELIOS_HARNESS_TOPOLOGY_H_
