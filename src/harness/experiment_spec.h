// ExperimentSpec: the declarative, validated description of one experiment.
//
// Benches, the helios_sim CLI, and tests all used to mutate a raw
// ExperimentConfig by hand; ExperimentSpec replaces those ad-hoc blocks
// with one audited path: a value type with a fluent builder, a Validate()
// that reuses core::ValidateHeliosConfig (including the Rule 1 safety
// check on the offsets the spec would plan), and a ToJson()/FromJson()
// round-trip so whole experiment grids can be stored, diffed, and echoed
// back next to their results (see harness::SweepRunner).
//
// RunExperiment(const ExperimentConfig&) remains as the compatibility
// shim; ToConfig() is the bridge.

#ifndef HELIOS_HARNESS_EXPERIMENT_SPEC_H_
#define HELIOS_HARNESS_EXPERIMENT_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "harness/experiment.h"
#include "harness/topology.h"
#include "lp/mao.h"
#include "sim/fault_plan.h"

namespace helios::harness {

/// Canonical lowercase token for a protocol ("helios0", "mf", "rc",
/// "2pc", ...) — the spelling used in JSON specs and on CLI flags.
const char* ProtocolToken(Protocol p);

/// Inverse of ProtocolToken. Also accepts the display names returned by
/// ProtocolName (e.g. "Helios-0", "2PC/Paxos") for convenience.
Result<Protocol> ParseProtocolToken(const std::string& token);

/// Decorrelated per-job seed for grid entry `index` (splitmix64 of the
/// base): deterministic, and distinct jobs never share RNG streams even
/// when the grid varies only a non-seed axis.
uint64_t DeriveSeed(uint64_t base_seed, uint64_t index);

struct ExperimentSpec {
  /// Optional display label (job lists, progress lines, JSON echo).
  std::string label;

  Protocol protocol = Protocol::kHelios0;

  /// "table2" (the paper's five-datacenter AWS deployment), "example3"
  /// (the Section 3.2 three-datacenter example), or "uniform" (synthetic
  /// all-pairs-equal, parameterized below).
  std::string topology = "table2";
  int uniform_dcs = 5;
  double uniform_rtt_ms = 100.0;
  double uniform_stddev_ms = 0.0;

  int clients = 60;
  Duration warmup = Seconds(5);
  Duration measure = Seconds(30);
  Duration drain = Seconds(5);
  uint64_t seed = 42;

  // Workload (workload::WorkloadConfig).
  int ops_per_txn = 5;
  double write_fraction = 0.5;
  uint64_t num_keys = 50000;
  double zipf_theta = 0.2;
  int value_size = 16;
  double read_only_fraction = 0.0;
  /// Confine each transaction's keys to one of P contiguous key-range
  /// partitions (workload::WorkloadConfig::key_partitions); aligned with
  /// range sharding it makes every transaction single-shard. 1 = off.
  int key_partitions = 1;

  Duration log_interval = Millis(10);
  Duration grace_time = Millis(500);
  Duration client_link_one_way = Micros(500);

  /// Per-datacenter clock offsets; empty = synchronized.
  std::vector<Duration> clock_offsets;

  /// RTT matrix used to plan commit offsets; nullopt = the topology truth.
  std::optional<lp::RttMatrix> rtt_estimate_ms;

  DcId two_pc_coordinator = 0;
  bool preload = true;
  bool check_serializability = false;

  /// Horizontal sharding (src/shard): number of independent Helios
  /// logs+timetables per datacenter, and how keys are partitioned across
  /// them ("hash" or "range" over the workload keyspace). shards == 1 (the
  /// default) constructs the plain unsharded deployment, byte for byte;
  /// shards > 1 is only valid for the Helios-family protocols (not mf).
  int shards = 1;
  std::string shard_by = "hash";

  /// Chaos: declarative fault schedule executed during the run (message
  /// loss/duplication/reordering/delay plus timed crash and partition
  /// events — see docs/FAULTS.md). Empty (the default) keeps the run
  /// byte-identical to pre-chaos output.
  sim::FaultPlan fault_plan;

  /// Reliable-delivery session layer under the protocol: "auto" (on
  /// exactly when fault_plan has message faults), "on", or "off".
  std::string reliable = "auto";

  /// Client commit timeout + bounded retry (docs/RECOVERY.md). 0 disables
  /// the timeout entirely (no timer scheduled); crash plans need it so
  /// clients whose requests a crashed datacenter swallowed make progress.
  Duration client_timeout = 0;
  int client_retries = 3;

  /// Lifecycle tracing (obs::TraceRecorder). Off by default — tracing is
  /// for single diagnostic runs, not sweeps. 0 capacity = recorder
  /// default ring size.
  bool trace_enabled = false;
  size_t trace_ring_capacity = 0;

  /// Gray-failure detection and reaction (docs/FAULTS.md "Gray failures
  /// and suspicion"). Off by default — the remaining knobs only matter
  /// when enabled, and only the Helios-family protocols honor them.
  bool health_enabled = false;
  double health_phi_threshold = 8.0;
  bool health_degraded_commit = true;
  Duration health_hedge_interval = Millis(100);

  // --- Fluent builder -----------------------------------------------------
  ExperimentSpec& WithLabel(std::string v) { label = std::move(v); return *this; }
  ExperimentSpec& WithProtocol(Protocol v) { protocol = v; return *this; }
  ExperimentSpec& WithTopology(std::string v) { topology = std::move(v); return *this; }
  ExperimentSpec& WithUniformTopology(int dcs, double rtt, double stddev = 0.0) {
    topology = "uniform";
    uniform_dcs = dcs;
    uniform_rtt_ms = rtt;
    uniform_stddev_ms = stddev;
    return *this;
  }
  ExperimentSpec& WithClients(int v) { clients = v; return *this; }
  ExperimentSpec& WithWarmup(Duration v) { warmup = v; return *this; }
  ExperimentSpec& WithMeasure(Duration v) { measure = v; return *this; }
  ExperimentSpec& WithDrain(Duration v) { drain = v; return *this; }
  ExperimentSpec& WithSeed(uint64_t v) { seed = v; return *this; }
  ExperimentSpec& WithOpsPerTxn(int v) { ops_per_txn = v; return *this; }
  ExperimentSpec& WithWriteFraction(double v) { write_fraction = v; return *this; }
  ExperimentSpec& WithNumKeys(uint64_t v) { num_keys = v; return *this; }
  ExperimentSpec& WithZipfTheta(double v) { zipf_theta = v; return *this; }
  ExperimentSpec& WithValueSize(int v) { value_size = v; return *this; }
  ExperimentSpec& WithReadOnlyFraction(double v) { read_only_fraction = v; return *this; }
  ExperimentSpec& WithKeyPartitions(int v) { key_partitions = v; return *this; }
  ExperimentSpec& WithLogInterval(Duration v) { log_interval = v; return *this; }
  ExperimentSpec& WithGraceTime(Duration v) { grace_time = v; return *this; }
  ExperimentSpec& WithClientLinkOneWay(Duration v) { client_link_one_way = v; return *this; }
  ExperimentSpec& WithClockOffsets(std::vector<Duration> v) {
    clock_offsets = std::move(v);
    return *this;
  }
  ExperimentSpec& WithRttEstimate(lp::RttMatrix v) {
    rtt_estimate_ms = std::move(v);
    return *this;
  }
  ExperimentSpec& WithTwoPcCoordinator(DcId v) { two_pc_coordinator = v; return *this; }
  ExperimentSpec& WithShards(int v) { shards = v; return *this; }
  ExperimentSpec& WithShardBy(std::string v) { shard_by = std::move(v); return *this; }
  ExperimentSpec& WithPreload(bool v) { preload = v; return *this; }
  ExperimentSpec& WithSerializabilityCheck(bool v = true) {
    check_serializability = v;
    return *this;
  }
  ExperimentSpec& WithFaultPlan(sim::FaultPlan v) {
    fault_plan = std::move(v);
    return *this;
  }
  /// Uniform per-message loss probability on every link, for loss-grid
  /// sweeps. Composes with any faults already in the plan.
  ExperimentSpec& WithLoss(double p) { fault_plan.WithLoss(p); return *this; }
  ExperimentSpec& WithDuplication(double p) {
    fault_plan.WithDuplication(p);
    return *this;
  }
  ExperimentSpec& WithReliable(std::string v) {
    reliable = std::move(v);
    return *this;
  }
  ExperimentSpec& WithClientTimeout(Duration timeout, int retries = 3) {
    client_timeout = timeout;
    client_retries = retries;
    return *this;
  }
  ExperimentSpec& WithTrace(bool enabled = true, size_t ring_capacity = 0) {
    trace_enabled = enabled;
    trace_ring_capacity = ring_capacity;
    return *this;
  }
  ExperimentSpec& WithHealth(bool enabled = true) {
    health_enabled = enabled;
    return *this;
  }
  ExperimentSpec& WithHealthPhiThreshold(double v) {
    health_phi_threshold = v;
    return *this;
  }
  ExperimentSpec& WithDegradedCommit(bool v) {
    health_degraded_commit = v;
    return *this;
  }
  ExperimentSpec& WithHedgeInterval(Duration v) {
    health_hedge_interval = v;
    return *this;
  }

  // --- API ----------------------------------------------------------------

  /// Label if set, else a compact "protocol/cN/sN" identifier.
  std::string DisplayName() const;

  /// Builds the topology the spec names. Requires a valid topology field.
  Topology BuildTopology() const;

  /// Full validation: spec-level range checks, then the deployment checks
  /// of core::ValidateHeliosConfig on the HeliosConfig this spec implies —
  /// including Rule 1 on the commit offsets it would plan.
  Status Validate() const;

  /// Validates, then materializes the legacy ExperimentConfig for
  /// RunExperiment. Fields outside the spec (service model, tracing) keep
  /// their defaults and can be adjusted on the returned value.
  Result<ExperimentConfig> ToConfig() const;

  /// Deterministic JSON: one flat object, keys in fixed alphabetical
  /// order, shortest-round-trip number formatting. Optional fields
  /// (label, clock_offsets_us, rtt_estimate_ms) are omitted when unset.
  std::string ToJson() const;

  /// Parses ToJson() output (or hand-written specs). Unknown keys are an
  /// error — specs are an audited input, typos must not pass silently.
  /// Missing keys keep their defaults. The result is NOT auto-validated;
  /// call Validate() before running.
  static Result<ExperimentSpec> FromJson(const std::string& json);

  friend bool operator==(const ExperimentSpec& a, const ExperimentSpec& b);
};

}  // namespace helios::harness

#endif  // HELIOS_HARNESS_EXPERIMENT_SPEC_H_
