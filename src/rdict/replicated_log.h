// Per-datacenter instance of the Replicated Dictionary shared log
// (Wuu & Bernstein, PODC'84), the communication substrate of Helios and
// Message Futures.
//
// Each datacenter appends its own records with strictly increasing local
// timestamps and periodically sends every peer a *partial log*: exactly the
// records the timetable says the peer may not have, plus a copy of its
// timetable. Receipt merges new records (including transitively relayed
// ones) and the timetable. Records known by every datacenter can be
// garbage-collected.
//
// Storage is one ordered map per origin, keyed by timestamp. Because the
// timetable bounds what a peer has *per origin* (T[peer][origin] >= ts),
// building a partial log is an upper_bound per origin plus a k-way merge
// of the suffixes — proportional to the records actually sent, not to
// every live record. Garbage collection is likewise a prefix erase per
// origin. The merge emits records in ascending (ts, origin) order, the
// exact order the old single-map representation produced.

#ifndef HELIOS_RDICT_REPLICATED_LOG_H_
#define HELIOS_RDICT_REPLICATED_LOG_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rdict/record.h"
#include "rdict/timetable.h"

namespace helios::rdict {

/// A partial-log transmission between two datacenters.
struct LogMessage {
  DcId from = kInvalidDc;
  Timetable table;
  std::vector<LogRecord> records;  ///< Sorted by RecordOrder.

  explicit LogMessage(int n) : table(n) {}
};

/// One datacenter's view of the replicated log.
class ReplicatedLog {
 public:
  ReplicatedLog(DcId self, int n);

  DcId self() const { return self_; }
  int size() const { return n_; }
  const Timetable& table() const { return table_; }

  /// Appends a locally created record. `rec.origin` must equal self and
  /// `rec.ts` must exceed every timestamp this datacenter has used before.
  Status AppendLocal(const LogRecord& rec);

  /// Declares that this datacenter has produced every record it will ever
  /// produce with timestamp <= `ts` (i.e. its clock passed `ts`). Called
  /// before each transmission so peers' knowledge advances even when this
  /// datacenter is idle — without it, an idle datacenter would stall every
  /// peer's commit wait. `ts` below the current bound is ignored; all
  /// subsequent appends must use timestamps > `ts`.
  void AdvanceOwnClock(Timestamp ts) { table_.Advance(self_, self_, ts); }

  /// Builds the partial log for `peer`: every live record the timetable
  /// does not prove the peer has, plus this datacenter's timetable.
  LogMessage BuildMessageFor(DcId peer) const;

  /// Reuse form of BuildMessageFor: fills `out` in place, keeping its
  /// vector capacities, so a pooled message/envelope costs no allocation
  /// in steady state. `out` must have been constructed for this cluster
  /// size.
  void BuildMessageInto(DcId peer, LogMessage* out) const;

  /// Ingests a message. Returns the records this datacenter had not seen
  /// before, in RecordOrder, after merging the timetable. Records the
  /// timetable already covers are ignored (duplicate delivery is harmless).
  std::vector<LogRecord> Ingest(const LogMessage& msg);

  /// Recovery: re-inserts a record persisted before a restart (any
  /// origin), advancing this datacenter's direct knowledge. Duplicates are
  /// ignored. Only call before normal operation resumes.
  void RestoreRecord(const LogRecord& rec);

  /// Recovery: merges a persisted timetable snapshot (element-wise max).
  void RestoreTimetable(const Timetable& table);

  /// Discards records that every datacenter is known to have received.
  /// Returns the number discarded.
  size_t GarbageCollect();

  /// Records currently retained (pre-GC).
  size_t live_records() const { return live_count_; }
  uint64_t total_appended() const { return total_appended_; }

  /// Direct-knowledge convenience: T[self][origin].
  Timestamp KnownUpTo(DcId origin) const { return table_.Get(self_, origin); }

  /// Scans live records in order (for tests and debugging).
  std::vector<LogRecord> Snapshot() const;

 private:
  using OriginLog = std::map<Timestamp, LogRecord>;

  /// Appends every record from per-origin suffixes starting at `from[o]`
  /// to `out` in ascending (ts, origin) order.
  void MergeSuffixes(const std::vector<OriginLog::const_iterator>& from,
                     std::vector<LogRecord>* out) const;

  /// Inserts unless a record with that (origin, ts) already exists.
  /// Returns whether it inserted.
  bool InsertRecord(const LogRecord& rec);

  DcId self_;
  int n_;
  Timetable table_;
  std::vector<OriginLog> by_origin_;
  size_t live_count_ = 0;
  uint64_t total_appended_ = 0;
};

}  // namespace helios::rdict

#endif  // HELIOS_RDICT_REPLICATED_LOG_H_
