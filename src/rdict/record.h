// Log records exchanged between datacenters.
//
// Each transaction produces two records in the shared log (Section 4.1):
// one *preparing* record when it requests to commit and one *finished*
// record carrying the commit/abort decision. Records are timestamped with
// the issuing datacenter's local clock; a datacenter's records have strictly
// increasing timestamps, which is what makes the N x N timetable a sound
// summary of "who knows what".

#ifndef HELIOS_RDICT_RECORD_H_
#define HELIOS_RDICT_RECORD_H_

#include <string>

#include "common/types.h"
#include "txn/transaction.h"

namespace helios::rdict {

enum class RecordType {
  kPreparing,  ///< The transaction is trying to commit.
  kFinished,   ///< The transaction committed or aborted.
};

/// One entry of the replicated log.
struct LogRecord {
  RecordType type = RecordType::kPreparing;
  /// For kFinished: true if the transaction committed. For kFinished
  /// committed records, `ts` is the commit timestamp used to version the
  /// write set at every replica.
  bool committed = false;
  /// Record timestamp on the origin's clock; unique and increasing per
  /// origin.
  Timestamp ts = kMinTimestamp;
  /// For committed kFinished records only: the version timestamp used to
  /// install the write set at every replica. It is the origin's clock
  /// "dependency-bumped" above the timestamp of every version the
  /// transaction read or overwrote, so the per-key version order matches
  /// the serialization order even under arbitrary clock skew. (Record `ts`
  /// orders the *log*; `version_ts` orders *data versions*.)
  Timestamp version_ts = kMinTimestamp;
  /// Datacenter that created the record (== body->id.origin).
  DcId origin = kInvalidDc;
  /// Shared transaction payload (read/write sets).
  TxnBodyPtr body;

  std::string ToString() const;
};

/// Total order of records used when materializing a log: by timestamp,
/// breaking ties by origin. Within one origin this is exactly the origin's
/// append order.
struct RecordOrder {
  bool operator()(const LogRecord& a, const LogRecord& b) const {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.origin < b.origin;
  }
};

}  // namespace helios::rdict

#endif  // HELIOS_RDICT_RECORD_H_
