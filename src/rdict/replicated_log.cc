#include "rdict/replicated_log.h"

#include <cassert>
#include <cstdio>

namespace helios::rdict {

std::string LogRecord::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s(txn=%s ts=%lld origin=%d%s)",
                type == RecordType::kPreparing ? "prep" : "fin",
                body ? body->id.ToString().c_str() : "?",
                static_cast<long long>(ts), origin,
                type == RecordType::kFinished
                    ? (committed ? " committed" : " aborted")
                    : "");
  return buf;
}

ReplicatedLog::ReplicatedLog(DcId self, int n)
    : self_(self), n_(n), table_(n), by_origin_(static_cast<size_t>(n)) {
  assert(self >= 0 && self < n);
}

bool ReplicatedLog::InsertRecord(const LogRecord& rec) {
  const auto [it, inserted] =
      by_origin_[static_cast<size_t>(rec.origin)].emplace(rec.ts, rec);
  (void)it;
  if (inserted) ++live_count_;
  return inserted;
}

Status ReplicatedLog::AppendLocal(const LogRecord& rec) {
  if (rec.origin != self_) {
    return Status::InvalidArgument("AppendLocal with foreign origin");
  }
  if (rec.ts <= table_.Get(self_, self_)) {
    return Status::InvalidArgument(
        "record timestamps must be strictly increasing per origin");
  }
  InsertRecord(rec);
  table_.Set(self_, self_, rec.ts);
  ++total_appended_;
  return Status::Ok();
}

void ReplicatedLog::MergeSuffixes(
    const std::vector<OriginLog::const_iterator>& from,
    std::vector<LogRecord>* out) const {
  // K-way merge by (ts, origin) — k = cluster size, so linear selection
  // per emitted record beats a heap for realistic n. Origin index order
  // breaks timestamp ties, matching RecordOrder.
  std::vector<OriginLog::const_iterator> cursor = from;
  for (;;) {
    int best = -1;
    for (DcId o = 0; o < n_; ++o) {
      if (cursor[o] == by_origin_[static_cast<size_t>(o)].end()) continue;
      if (best < 0 || cursor[o]->first < cursor[best]->first) best = o;
    }
    if (best < 0) return;
    out->push_back(cursor[best]->second);
    ++cursor[best];
  }
}

void ReplicatedLog::BuildMessageInto(DcId peer, LogMessage* out) const {
  out->from = self_;
  out->table = table_;
  out->records.clear();
  // Per origin, the timetable proves `peer` has everything with
  // ts <= T[peer][origin]; only the suffix above that bound is sent.
  std::vector<OriginLog::const_iterator> from(static_cast<size_t>(n_));
  for (DcId origin = 0; origin < n_; ++origin) {
    from[origin] = by_origin_[static_cast<size_t>(origin)].upper_bound(
        table_.Get(peer, origin));
  }
  MergeSuffixes(from, &out->records);
}

LogMessage ReplicatedLog::BuildMessageFor(DcId peer) const {
  LogMessage msg(n_);
  BuildMessageInto(peer, &msg);
  return msg;
}

std::vector<LogRecord> ReplicatedLog::Ingest(const LogMessage& msg) {
  std::vector<LogRecord> fresh;
  for (const LogRecord& rec : msg.records) {
    if (table_.HasRecord(self_, rec.origin, rec.ts)) continue;  // Duplicate.
    InsertRecord(rec);
    fresh.push_back(rec);
  }
  // Note: the timetable merge below absorbs the sender's row, which covers
  // all records in the message; per-record Advance is not needed.
  table_.MergeFrom(msg.table, self_, msg.from);
  return fresh;
}

void ReplicatedLog::RestoreRecord(const LogRecord& rec) {
  if (table_.HasRecord(self_, rec.origin, rec.ts)) {
    // Knowledge already covers it; keep the record itself if missing (it
    // may still need retransmission to peers).
    InsertRecord(rec);
    return;
  }
  InsertRecord(rec);
  table_.Advance(self_, rec.origin, rec.ts);
  if (rec.origin == self_) ++total_appended_;
}

void ReplicatedLog::RestoreTimetable(const Timetable& table) {
  for (DcId i = 0; i < n_; ++i) {
    for (DcId j = 0; j < n_; ++j) {
      table_.Advance(i, j, table.Get(i, j));
    }
  }
}

size_t ReplicatedLog::GarbageCollect() {
  size_t dropped = 0;
  // Everything at or below MinColumn(origin) is known everywhere: erase
  // the per-origin prefix.
  for (DcId origin = 0; origin < n_; ++origin) {
    OriginLog& log = by_origin_[static_cast<size_t>(origin)];
    const auto end = log.upper_bound(table_.MinColumn(origin));
    for (auto it = log.begin(); it != end;) {
      it = log.erase(it);
      ++dropped;
    }
  }
  live_count_ -= dropped;
  return dropped;
}

std::vector<LogRecord> ReplicatedLog::Snapshot() const {
  std::vector<LogRecord> out;
  out.reserve(live_count_);
  std::vector<OriginLog::const_iterator> from(static_cast<size_t>(n_));
  for (DcId origin = 0; origin < n_; ++origin) {
    from[origin] = by_origin_[static_cast<size_t>(origin)].begin();
  }
  MergeSuffixes(from, &out);
  return out;
}

}  // namespace helios::rdict
