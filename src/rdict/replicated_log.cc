#include "rdict/replicated_log.h"

#include <cassert>
#include <cstdio>

namespace helios::rdict {

std::string LogRecord::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s(txn=%s ts=%lld origin=%d%s)",
                type == RecordType::kPreparing ? "prep" : "fin",
                body ? body->id.ToString().c_str() : "?",
                static_cast<long long>(ts), origin,
                type == RecordType::kFinished
                    ? (committed ? " committed" : " aborted")
                    : "");
  return buf;
}

ReplicatedLog::ReplicatedLog(DcId self, int n)
    : self_(self), n_(n), table_(n) {
  assert(self >= 0 && self < n);
}

Status ReplicatedLog::AppendLocal(const LogRecord& rec) {
  if (rec.origin != self_) {
    return Status::InvalidArgument("AppendLocal with foreign origin");
  }
  if (rec.ts <= table_.Get(self_, self_)) {
    return Status::InvalidArgument(
        "record timestamps must be strictly increasing per origin");
  }
  records_.emplace(RecordKey{rec.ts, rec.origin}, rec);
  table_.Set(self_, self_, rec.ts);
  ++total_appended_;
  return Status::Ok();
}

LogMessage ReplicatedLog::BuildMessageFor(DcId peer) const {
  LogMessage msg(n_);
  msg.from = self_;
  msg.table = table_;
  for (const auto& [key, rec] : records_) {
    if (!table_.HasRecord(peer, rec.origin, rec.ts)) {
      msg.records.push_back(rec);
    }
  }
  return msg;
}

std::vector<LogRecord> ReplicatedLog::Ingest(const LogMessage& msg) {
  std::vector<LogRecord> fresh;
  for (const LogRecord& rec : msg.records) {
    if (table_.HasRecord(self_, rec.origin, rec.ts)) continue;  // Duplicate.
    records_.emplace(RecordKey{rec.ts, rec.origin}, rec);
    fresh.push_back(rec);
  }
  // Note: the timetable merge below absorbs the sender's row, which covers
  // all records in the message; per-record Advance is not needed.
  table_.MergeFrom(msg.table, self_, msg.from);
  return fresh;
}

void ReplicatedLog::RestoreRecord(const LogRecord& rec) {
  if (table_.HasRecord(self_, rec.origin, rec.ts)) {
    // Knowledge already covers it; keep the record itself if missing (it
    // may still need retransmission to peers).
    records_.emplace(RecordKey{rec.ts, rec.origin}, rec);
    return;
  }
  records_.emplace(RecordKey{rec.ts, rec.origin}, rec);
  table_.Advance(self_, rec.origin, rec.ts);
  if (rec.origin == self_) ++total_appended_;
}

void ReplicatedLog::RestoreTimetable(const Timetable& table) {
  for (DcId i = 0; i < n_; ++i) {
    for (DcId j = 0; j < n_; ++j) {
      table_.Advance(i, j, table.Get(i, j));
    }
  }
}

size_t ReplicatedLog::GarbageCollect() {
  size_t dropped = 0;
  // Precompute the horizon per origin.
  std::vector<Timestamp> horizon(static_cast<size_t>(n_));
  for (DcId origin = 0; origin < n_; ++origin) {
    horizon[origin] = table_.MinColumn(origin);
  }
  for (auto it = records_.begin(); it != records_.end();) {
    const LogRecord& rec = it->second;
    if (rec.ts <= horizon[rec.origin]) {
      it = records_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<LogRecord> ReplicatedLog::Snapshot() const {
  std::vector<LogRecord> out;
  out.reserve(records_.size());
  for (const auto& [key, rec] : records_) out.push_back(rec);
  return out;
}

}  // namespace helios::rdict
