// The N x N timetable of Wuu & Bernstein's Replicated Dictionary.
//
// Entry T_A[B, C] = tau means: datacenter A knows that datacenter B has
// received every record that C created with timestamp <= tau. Row A of A's
// own table is A's direct knowledge; other rows are (possibly stale)
// knowledge about peers, learned from the timetables piggybacked on log
// messages. The timetable drives three things in this codebase:
//
//   1. Partial-log computation: A sends B only records B may not know.
//   2. Helios's commit Rule 2: T_A[A, B] >= kts is exactly "A has processed
//      B's history far enough".
//   3. Garbage collection: a record known to every row can be discarded.

#ifndef HELIOS_RDICT_TIMETABLE_H_
#define HELIOS_RDICT_TIMETABLE_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace helios::rdict {

class Timetable {
 public:
  /// Creates an `n` x `n` table initialized to kMinTimestamp.
  explicit Timetable(int n);

  int size() const { return n_; }

  Timestamp Get(DcId row, DcId col) const { return at(row, col); }
  void Set(DcId row, DcId col, Timestamp ts) { at(row, col) = ts; }

  /// Raises entry (row, col) to at least `ts`.
  void Advance(DcId row, DcId col, Timestamp ts);

  /// Wuu-Bernstein merge on receipt of `sender`'s table at `self`:
  ///   - element-wise maximum over all rows (transitive knowledge), and
  ///   - row `self` absorbs row `sender` (everything the sender knew
  ///     directly, we now know too, because its message carried the
  ///     corresponding records).
  void MergeFrom(const Timetable& other, DcId self, DcId sender);

  /// True if, according to this table, `peer` has the record (origin, ts).
  bool HasRecord(DcId peer, DcId origin, Timestamp ts) const {
    return Get(peer, origin) >= ts;
  }

  /// min over rows of column `origin`: every datacenter has the records of
  /// `origin` up to this timestamp (GC horizon).
  Timestamp MinColumn(DcId origin) const;

  /// Multi-line debug rendering.
  std::string ToString() const;

  friend bool operator==(const Timetable& a, const Timetable& b) {
    return a.n_ == b.n_ && a.cells_ == b.cells_;
  }

 private:
  Timestamp& at(DcId row, DcId col) {
    return cells_[static_cast<size_t>(row) * n_ + col];
  }
  const Timestamp& at(DcId row, DcId col) const {
    return cells_[static_cast<size_t>(row) * n_ + col];
  }

  int n_;
  std::vector<Timestamp> cells_;
};

}  // namespace helios::rdict

#endif  // HELIOS_RDICT_TIMETABLE_H_
