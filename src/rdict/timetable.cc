#include "rdict/timetable.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace helios::rdict {

Timetable::Timetable(int n)
    : n_(n), cells_(static_cast<size_t>(n) * n, kMinTimestamp) {
  assert(n > 0);
}

void Timetable::Advance(DcId row, DcId col, Timestamp ts) {
  Timestamp& cell = at(row, col);
  cell = std::max(cell, ts);
}

void Timetable::MergeFrom(const Timetable& other, DcId self, DcId sender) {
  assert(other.n_ == n_);
  for (DcId i = 0; i < n_; ++i) {
    for (DcId j = 0; j < n_; ++j) {
      Advance(i, j, other.Get(i, j));
    }
  }
  // Everything the sender knew directly, the message delivered to us.
  for (DcId j = 0; j < n_; ++j) {
    Advance(self, j, other.Get(sender, j));
  }
}

Timestamp Timetable::MinColumn(DcId origin) const {
  Timestamp min_ts = at(0, origin);
  for (DcId i = 1; i < n_; ++i) min_ts = std::min(min_ts, at(i, origin));
  return min_ts;
}

std::string Timetable::ToString() const {
  std::string out;
  char buf[64];
  for (DcId i = 0; i < n_; ++i) {
    for (DcId j = 0; j < n_; ++j) {
      const Timestamp v = at(i, j);
      if (v == kMinTimestamp) {
        std::snprintf(buf, sizeof(buf), "%12s", "-inf");
      } else {
        std::snprintf(buf, sizeof(buf), "%12lld",
                      static_cast<long long>(v));
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace helios::rdict
