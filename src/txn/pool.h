// Preparing-transaction pools.
//
// Helios keeps local preparing transactions in PTPool and remote preparing
// transactions in EPTPool (Section 4.3). Both are instances of `TxnPool`,
// which indexes transactions by the keys they read and write so the
// conflict checks of Algorithms 1 and 2 cost O(keys in the probe) instead
// of O(pool size).

#ifndef HELIOS_TXN_POOL_H_
#define HELIOS_TXN_POOL_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "txn/transaction.h"

namespace helios {

/// A set of preparing transactions with read/write key indexes.
class TxnPool {
 public:
  /// Adds `body`; no-op if a transaction with the same id is present.
  void Add(TxnBodyPtr body);

  /// Removes by id; returns false if absent.
  bool Remove(const TxnId& id);

  bool Contains(const TxnId& id) const { return txns_.count(id) > 0; }
  const TxnBodyPtr* Find(const TxnId& id) const;
  size_t size() const { return txns_.size(); }
  bool empty() const { return txns_.empty(); }

  /// Transactions in the pool whose *write set* intersects the read or
  /// write set of `probe` — Algorithm 1's check: a new commit request
  /// aborts if any pooled transaction is writing something it touched.
  std::vector<TxnBodyPtr> ConflictingWriters(const TxnBody& probe) const;

  /// Transactions in the pool whose read *or* write set intersects the
  /// *write set* of `incoming` — Algorithm 2's check: an incoming remote
  /// transaction aborts every local preparing transaction it invalidates.
  std::vector<TxnBodyPtr> Victims(const TxnBody& incoming) const;

  /// Snapshot of all pooled transactions (unordered).
  std::vector<TxnBodyPtr> All() const;

 private:
  void IndexKey(std::unordered_map<Key, std::vector<TxnId>>& index,
                const Key& key, const TxnId& id);
  void UnindexKey(std::unordered_map<Key, std::vector<TxnId>>& index,
                  const Key& key, const TxnId& id);

  std::unordered_map<TxnId, TxnBodyPtr, TxnIdHash> txns_;
  std::unordered_map<Key, std::vector<TxnId>> writers_;
  std::unordered_map<Key, std::vector<TxnId>> readers_;
};

}  // namespace helios

#endif  // HELIOS_TXN_POOL_H_
