// Transaction representation shared by Helios and every baseline protocol.
//
// Following the paper's system model (Section 4.1): clients perform reads
// first (collecting the version timestamp of each read), buffer writes, and
// submit a commit request carrying the read set (with version timestamps)
// and the buffered write set. Blind writes — a key in the write set that was
// never read — are allowed.

#ifndef HELIOS_TXN_TRANSACTION_H_
#define HELIOS_TXN_TRANSACTION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace helios {

/// One entry of a transaction's read set: the key plus the version
/// timestamp the client observed, used for "has it been overwritten?"
/// validation (Algorithm 1, lines 4-6).
struct ReadEntry {
  Key key;
  Timestamp version_ts = kMinTimestamp;
  /// Transaction that wrote the version the client read (invalid if the
  /// key had never been written). Used for exact overwrite validation and
  /// by the serializability checker's reads-from edges.
  TxnId version_writer;
};

/// One entry of a transaction's write set.
struct WriteEntry {
  Key key;
  Value value;
};

/// The immutable payload of a transaction: identity plus read and write
/// sets. Shared (by shared_ptr) between a transaction's preparing and
/// finished log records so replicating a decision does not copy the sets.
struct TxnBody {
  TxnId id;
  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;

  bool ReadsKey(const Key& k) const;
  bool WritesKey(const Key& k) const;
};

using TxnBodyPtr = std::shared_ptr<const TxnBody>;

/// Builds a TxnBody. Validates that write-set keys are unique.
TxnBodyPtr MakeTxnBody(TxnId id, std::vector<ReadEntry> reads,
                       std::vector<WriteEntry> writes);

/// True if the read or write set of `t` intersects the write set of
/// `other` — the conflict predicate of Algorithm 1 (a commit request
/// conflicting with a pooled preparing transaction) and, with the roles
/// swapped, of Algorithm 2 (an incoming remote transaction conflicting with
/// a local preparing one).
bool ConflictsWithWritesOf(const TxnBody& t, const TxnBody& other);

/// True if the write sets of the two transactions intersect.
bool WriteSetsIntersect(const TxnBody& a, const TxnBody& b);

}  // namespace helios

#endif  // HELIOS_TXN_TRANSACTION_H_
