#include "txn/pool.h"

#include <algorithm>
#include <cassert>

namespace helios {

void TxnPool::IndexKey(std::unordered_map<Key, std::vector<TxnId>>& index,
                       const Key& key, const TxnId& id) {
  index[key].push_back(id);
}

void TxnPool::UnindexKey(std::unordered_map<Key, std::vector<TxnId>>& index,
                         const Key& key, const TxnId& id) {
  auto it = index.find(key);
  if (it == index.end()) return;
  auto& vec = it->second;
  vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
  if (vec.empty()) index.erase(it);
}

void TxnPool::Add(TxnBodyPtr body) {
  assert(body != nullptr);
  const TxnId id = body->id;
  auto [it, inserted] = txns_.emplace(id, std::move(body));
  if (!inserted) return;
  const TxnBody& t = *it->second;
  for (const WriteEntry& w : t.write_set) IndexKey(writers_, w.key, id);
  for (const ReadEntry& r : t.read_set) IndexKey(readers_, r.key, id);
}

bool TxnPool::Remove(const TxnId& id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return false;
  const TxnBody& t = *it->second;
  for (const WriteEntry& w : t.write_set) UnindexKey(writers_, w.key, id);
  for (const ReadEntry& r : t.read_set) UnindexKey(readers_, r.key, id);
  txns_.erase(it);
  return true;
}

const TxnBodyPtr* TxnPool::Find(const TxnId& id) const {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

std::vector<TxnBodyPtr> TxnPool::ConflictingWriters(
    const TxnBody& probe) const {
  std::vector<TxnBodyPtr> out;
  auto collect = [&](const Key& key) {
    auto it = writers_.find(key);
    if (it == writers_.end()) return;
    for (const TxnId& id : it->second) {
      const auto found = txns_.find(id);
      assert(found != txns_.end());
      if (found->second->id == probe.id) continue;  // Never self-conflict.
      if (std::none_of(out.begin(), out.end(), [&](const TxnBodyPtr& p) {
            return p->id == id;
          })) {
        out.push_back(found->second);
      }
    }
  };
  for (const ReadEntry& r : probe.read_set) collect(r.key);
  for (const WriteEntry& w : probe.write_set) collect(w.key);
  return out;
}

std::vector<TxnBodyPtr> TxnPool::Victims(const TxnBody& incoming) const {
  std::vector<TxnBodyPtr> out;
  auto collect = [&](const std::unordered_map<Key, std::vector<TxnId>>& index,
                     const Key& key) {
    auto it = index.find(key);
    if (it == index.end()) return;
    for (const TxnId& id : it->second) {
      const auto found = txns_.find(id);
      assert(found != txns_.end());
      if (found->second->id == incoming.id) continue;
      if (std::none_of(out.begin(), out.end(), [&](const TxnBodyPtr& p) {
            return p->id == id;
          })) {
        out.push_back(found->second);
      }
    }
  };
  for (const WriteEntry& w : incoming.write_set) {
    collect(writers_, w.key);
    collect(readers_, w.key);
  }
  return out;
}

std::vector<TxnBodyPtr> TxnPool::All() const {
  std::vector<TxnBodyPtr> out;
  out.reserve(txns_.size());
  for (const auto& [id, body] : txns_) out.push_back(body);
  return out;
}

}  // namespace helios
