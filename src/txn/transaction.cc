#include "txn/transaction.h"

#include <algorithm>
#include <cassert>

namespace helios {

bool TxnBody::ReadsKey(const Key& k) const {
  return std::any_of(read_set.begin(), read_set.end(),
                     [&](const ReadEntry& r) { return r.key == k; });
}

bool TxnBody::WritesKey(const Key& k) const {
  return std::any_of(write_set.begin(), write_set.end(),
                     [&](const WriteEntry& w) { return w.key == k; });
}

TxnBodyPtr MakeTxnBody(TxnId id, std::vector<ReadEntry> reads,
                       std::vector<WriteEntry> writes) {
  auto body = std::make_shared<TxnBody>();
  body->id = id;
  body->read_set = std::move(reads);
  body->write_set = std::move(writes);
#ifndef NDEBUG
  for (size_t i = 0; i < body->write_set.size(); ++i) {
    for (size_t j = i + 1; j < body->write_set.size(); ++j) {
      assert(body->write_set[i].key != body->write_set[j].key &&
             "duplicate key in write set");
    }
  }
#endif
  return body;
}

bool ConflictsWithWritesOf(const TxnBody& t, const TxnBody& other) {
  for (const WriteEntry& w : other.write_set) {
    if (t.ReadsKey(w.key) || t.WritesKey(w.key)) return true;
  }
  return false;
}

bool WriteSetsIntersect(const TxnBody& a, const TxnBody& b) {
  for (const WriteEntry& w : a.write_set) {
    if (b.WritesKey(w.key)) return true;
  }
  return false;
}

}  // namespace helios
